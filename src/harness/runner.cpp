#include "harness/runner.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/log.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace lfsc {

const SeriesRecorder& ExperimentResult::find(std::string_view name) const {
  for (const auto& s : series) {
    if (s.name() == name) return s;
  }
  throw std::out_of_range("ExperimentResult: no series named " +
                          std::string(name));
}

ExperimentResult run_experiment(SlotSource& sim,
                                std::span<Policy* const> policies,
                                const RunConfig& config) {
  if (config.horizon <= 0) {
    throw std::invalid_argument("run_experiment: horizon must be positive");
  }
  ExperimentResult result;
  result.series.reserve(policies.size());
  for (const Policy* p : policies) {
    result.series.emplace_back(std::string(p->name()));
  }

  // Telemetry capture: harness-side metrics join the caller's registry
  // so one export carries the policy's internals and the run's outcome
  // series side by side (they cross-check each other in tests).
  telemetry::Registry* telemetry = config.telemetry;
  const int sample_every = config.telemetry_interval > 0
                               ? config.telemetry_interval
                               : std::max(1, config.horizon / 1000);
  const std::size_t telemetry_policy = std::min(
      policies.size() - 1,
      static_cast<std::size_t>(std::max(0, config.telemetry_policy)));
  telemetry::Counter* harness_slots = nullptr;
  telemetry::Gauge* cum_reward = nullptr;
  telemetry::Gauge* cum_qos = nullptr;
  telemetry::Gauge* cum_res = nullptr;
  if (telemetry != nullptr) {
    harness_slots = &telemetry->counter("harness.slots", "slots");
    cum_reward = &telemetry->gauge("harness.cum_reward", "reward");
    cum_qos = &telemetry->gauge("harness.cum_qos_violation", "violation");
    cum_res = &telemetry->gauge("harness.cum_resource_violation", "violation");
  }

  Stopwatch watch;
  const auto& net = sim.network();
  for (int t = 1; t <= config.horizon; ++t) {
    const Slot slot = sim.generate_slot(t);
    const auto step_policy = [&](std::size_t k) {
      Policy& policy = *policies[k];
      const Assignment assignment = policy.needs_realizations()
                                        ? policy.select_omniscient(slot)
                                        : policy.select(slot.info);
      if (config.validate) {
        if (const auto error = validate_assignment(slot.info, assignment, net)) {
          throw std::logic_error("policy " + std::string(policy.name()) +
                                 " produced invalid assignment at t=" +
                                 std::to_string(t) + ": " + *error);
        }
      }
      result.series[k].add(evaluate_slot(slot, assignment, net));
      if (!policy.needs_realizations()) {
        policy.observe(slot.info, assignment, make_feedback(slot, assignment));
      }
    };
    if (config.parallel_policies && policies.size() > 1) {
      // Each policy touches only its own state and its own series slot;
      // the slot itself is shared read-only.
      parallel_for(policies.size(), step_policy);
    } else {
      for (std::size_t k = 0; k < policies.size(); ++k) step_policy(k);
    }
    if (telemetry != nullptr) {
      harness_slots->add(1);
      if (t % sample_every == 0 || t == config.horizon) {
        const SeriesRecorder& rec = result.series[telemetry_policy];
        cum_reward->set(rec.total_reward());
        cum_qos->set(rec.total_qos_violation());
        cum_res->set(rec.total_resource_violation());
        result.telemetry_series.sample(*telemetry, t);
      }
    }
    if (config.progress_every > 0 && t % config.progress_every == 0) {
      LFSC_LOG_INFO << "slot " << t << "/" << config.horizon << " ("
                    << Table::num(watch.seconds(), 1) << "s)";
    }
  }
  result.wall_seconds = watch.seconds();
  return result;
}

}  // namespace lfsc
