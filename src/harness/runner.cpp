#include "harness/runner.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "common/log.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "harness/checkpoint.h"
#include "harness/step_runner.h"

namespace lfsc {

const SeriesRecorder& ExperimentResult::find(std::string_view name) const {
  for (const auto& s : series) {
    if (s.name() == name) return s;
  }
  throw std::out_of_range("ExperimentResult: no series named " +
                          std::string(name));
}

ExperimentResult run_experiment(SlotSource& sim,
                                std::span<Policy* const> policies,
                                const RunConfig& config) {
  if (config.horizon <= 0) {
    throw std::invalid_argument("run_experiment: horizon must be positive");
  }
  if (config.resume && config.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "run_experiment: resume requires a checkpoint path");
  }
  if (!config.checkpoint_path.empty()) {
    for (const Policy* p : policies) {
      if (!p->supports_checkpoint()) {
        throw std::invalid_argument(
            "run_experiment: checkpointing requested but policy '" +
            std::string(p->name()) + "' does not support it");
      }
    }
  }

  StepConfig step_config;
  step_config.horizon = config.horizon;
  step_config.validate = config.validate;
  step_config.parallel_policies = config.parallel_policies;
  step_config.telemetry = config.telemetry;
  step_config.telemetry_interval = config.telemetry_interval;
  step_config.telemetry_policy = config.telemetry_policy;
  step_config.checkpoint_counters = !config.checkpoint_path.empty();
  step_config.faults = config.faults;
  step_config.slot_budget_us = config.slot_budget_us;
  step_config.admission = config.admission;
  SlotStepper stepper(sim, policies, step_config);

  // Captures the run's full mutable state after `t` completed slots and
  // atomically replaces the checkpoint file. `last_checkpoint_t` skips
  // a redundant rewrite when a stop lands right after a periodic write —
  // which also keeps the checkpoint.writes count identical between an
  // interrupted-and-resumed run and an uninterrupted one.
  int last_checkpoint_t = -1;
  const auto write_checkpoint = [&](int t) {
    if (t == last_checkpoint_t) return;
    last_checkpoint_t = t;
    stepper.note_checkpoint_write();
    CheckpointState ck;
    stepper.capture(ck);
    write_checkpoint_file(config.checkpoint_path, ck);
  };

  if (config.resume) {
    CheckpointState ck = read_checkpoint_file(config.checkpoint_path);
    stepper.restore(ck);
    last_checkpoint_t = ck.completed_slots;
  }

  ExperimentResult result;
  Stopwatch watch;
  for (int t = stepper.completed_slots() + 1; t <= config.horizon; ++t) {
    if (config.stop != nullptr &&
        config.stop->load(std::memory_order_relaxed)) {
      result.interrupted = true;
      break;
    }
    stepper.step();
    if (!config.checkpoint_path.empty() && config.checkpoint_every > 0 &&
        t % config.checkpoint_every == 0 && t != config.horizon) {
      write_checkpoint(t);
    }
    if (config.progress_every > 0 && t % config.progress_every == 0) {
      LFSC_LOG_INFO << "slot " << t << "/" << config.horizon << " ("
                    << Table::num(watch.seconds(), 1) << "s)";
    }
  }
  result.completed_slots = stepper.completed_slots();
  if (!config.checkpoint_path.empty() &&
      (result.interrupted || result.completed_slots == config.horizon)) {
    // Final state: on interruption this is what --resume continues
    // from; on completion it doubles as the run's state archive.
    write_checkpoint(result.completed_slots);
  }
  result.series = std::move(stepper.series());
  result.telemetry_series = std::move(stepper.telemetry_series());
  result.wall_seconds = watch.seconds();
  return result;
}

}  // namespace lfsc
