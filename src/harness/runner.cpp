#include "harness/runner.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/log.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "harness/checkpoint.h"

namespace lfsc {

const SeriesRecorder& ExperimentResult::find(std::string_view name) const {
  for (const auto& s : series) {
    if (s.name() == name) return s;
  }
  throw std::out_of_range("ExperimentResult: no series named " +
                          std::string(name));
}

namespace {

/// A delayed-feedback batch in flight between observe(origin_t) and its
/// arrival `delay_slots` later.
struct DelayedBatch {
  int origin_t = 0;
  int arrival_t = 0;
  SlotFeedback feedback;
};

}  // namespace

ExperimentResult run_experiment(SlotSource& sim,
                                std::span<Policy* const> policies,
                                const RunConfig& config) {
  if (config.horizon <= 0) {
    throw std::invalid_argument("run_experiment: horizon must be positive");
  }
  if (config.resume && config.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "run_experiment: resume requires a checkpoint path");
  }
  if (!config.checkpoint_path.empty()) {
    for (const Policy* p : policies) {
      if (!p->supports_checkpoint()) {
        throw std::invalid_argument(
            "run_experiment: checkpointing requested but policy '" +
            std::string(p->name()) + "' does not support it");
      }
    }
  }
  ExperimentResult result;
  result.series.reserve(policies.size());
  for (const Policy* p : policies) {
    result.series.emplace_back(std::string(p->name()));
  }

  // Per-slot compute budget: run configuration, not checkpointed state,
  // so it is forwarded before any restore. Policies without overload
  // protection return false and are simply run unbudgeted.
  if (config.slot_budget_us > 0) {
    for (Policy* p : policies) {
      (void)p->set_slot_budget(config.slot_budget_us);
    }
  }

  // Fault-injection setup. The delay window is fixed by the fault
  // config, so policies opt in (or not) once, before the first slot.
  FaultModel* faults = config.faults;
  const bool faults_on = faults != nullptr && faults->enabled();
  const int delay_slots =
      faults_on && faults->config().delay_prob > 0.0
          ? faults->config().delay_slots
          : 0;
  std::vector<char> accepts_delayed(policies.size(), 0);
  if (delay_slots > 0) {
    for (std::size_t k = 0; k < policies.size(); ++k) {
      if (!policies[k]->needs_realizations()) {
        accepts_delayed[k] =
            policies[k]->enable_delayed_feedback(delay_slots) ? 1 : 0;
      }
    }
  }
  std::vector<std::vector<DelayedBatch>> in_flight(policies.size());

  // Admission control sits upstream of everything: the gateway sheds
  // before outages clear coverage and before any policy decides.
  AdmissionControl* admission = config.admission;
  const bool admission_on = admission != nullptr && admission->enabled();

  // Telemetry capture: harness-side metrics join the caller's registry
  // so one export carries the policy's internals and the run's outcome
  // series side by side (they cross-check each other in tests).
  telemetry::Registry* telemetry = config.telemetry;
  const int sample_every = config.telemetry_interval > 0
                               ? config.telemetry_interval
                               : std::max(1, config.horizon / 1000);
  const std::size_t telemetry_policy = std::min(
      policies.size() - 1,
      static_cast<std::size_t>(std::max(0, config.telemetry_policy)));
  telemetry::Counter* harness_slots = nullptr;
  telemetry::Gauge* cum_reward = nullptr;
  telemetry::Gauge* cum_qos = nullptr;
  telemetry::Gauge* cum_res = nullptr;
  telemetry::Counter* ckpt_writes = nullptr;
  telemetry::Counter* ckpt_resumes = nullptr;
  if (telemetry != nullptr) {
    harness_slots = &telemetry->counter("harness.slots", "slots");
    cum_reward = &telemetry->gauge("harness.cum_reward", "reward");
    cum_qos = &telemetry->gauge("harness.cum_qos_violation", "violation");
    cum_res = &telemetry->gauge("harness.cum_resource_violation", "violation");
    if (!config.checkpoint_path.empty()) {
      ckpt_writes = &telemetry->counter("checkpoint.writes", "files");
      ckpt_resumes = &telemetry->counter("checkpoint.resumes", "runs");
    }
    if (faults_on) faults->attach_telemetry(*telemetry);
    if (admission_on) admission->attach_telemetry(*telemetry);
  }

  // Captures the run's full mutable state after `t` completed slots and
  // atomically replaces the checkpoint file. `last_checkpoint_t` skips
  // a redundant rewrite when a stop lands right after a periodic write —
  // which also keeps the checkpoint.writes count identical between an
  // interrupted-and-resumed run and an uninterrupted one.
  int last_checkpoint_t = -1;
  const auto write_checkpoint = [&](int t) {
    if (t == last_checkpoint_t) return;
    last_checkpoint_t = t;
    if (ckpt_writes != nullptr) ckpt_writes->add(1);
    CheckpointState ck;
    ck.completed_slots = t;
    ck.horizon = config.horizon;
    ck.policies.resize(policies.size());
    for (std::size_t k = 0; k < policies.size(); ++k) {
      auto& ps = ck.policies[k];
      ps.name = std::string(policies[k]->name());
      policies[k]->save_checkpoint(ps.blob);
      const SeriesRecorder& rec = result.series[k];
      ps.reward.assign(rec.reward().begin(), rec.reward().end());
      ps.qos.assign(rec.qos_violation().begin(), rec.qos_violation().end());
      ps.res.assign(rec.resource_violation().begin(),
                    rec.resource_violation().end());
      for (const auto& batch : in_flight[k]) {
        ps.delayed.push_back({batch.origin_t, batch.arrival_t, batch.feedback});
      }
    }
    if (faults != nullptr) faults->save_state(ck.faults_blob);
    if (admission != nullptr) admission->save_state(ck.admission_blob);
    sim.save_state(ck.scenario_blob);
    if (telemetry != nullptr) ck.metrics = telemetry->snapshot();
    ck.telemetry_series = result.telemetry_series;
    write_checkpoint_file(config.checkpoint_path, ck);
  };

  int start_t = 1;
  if (config.resume) {
    CheckpointState ck = read_checkpoint_file(config.checkpoint_path);
    if (ck.horizon != config.horizon) {
      throw std::runtime_error(
          "run_experiment: checkpoint horizon differs from this run");
    }
    if (ck.policies.size() != policies.size()) {
      throw std::runtime_error(
          "run_experiment: checkpoint policy roster differs from this run");
    }
    for (std::size_t k = 0; k < policies.size(); ++k) {
      auto& ps = ck.policies[k];
      if (ps.name != policies[k]->name()) {
        throw std::runtime_error(
            "run_experiment: checkpoint policy '" + ps.name +
            "' does not match '" + std::string(policies[k]->name()) + "'");
      }
      policies[k]->load_checkpoint(ps.blob);
      result.series[k].restore(ps.reward, ps.qos, ps.res);
      for (auto& batch : ps.delayed) {
        in_flight[k].push_back(
            {batch.origin_t, batch.arrival_t, std::move(batch.feedback)});
      }
    }
    if (faults != nullptr) {
      if (ck.faults_blob.empty()) {
        throw std::runtime_error(
            "run_experiment: checkpoint carries no fault state but fault "
            "injection is configured");
      }
      faults->load_state(ck.faults_blob);
    }
    if (admission != nullptr) {
      if (ck.admission_blob.empty()) {
        throw std::runtime_error(
            "run_experiment: checkpoint carries no admission state but "
            "admission control is configured");
      }
      admission->load_state(ck.admission_blob);
    }
    if (telemetry != nullptr) telemetry->restore(ck.metrics);
    result.telemetry_series = std::move(ck.telemetry_series);
    // World-private state (ScenarioSource guards + drift-walk offsets;
    // a no-op for stateless sources) is restored before the
    // fast-forward so a spec/seed mismatch fails before any regeneration.
    sim.load_state(ck.scenario_blob);
    // Fast-forward the world: stateful sources (mobility) need slots in
    // order, and the task-id sequence must continue where it left off.
    Slot skipped;
    for (int t = 1; t <= ck.completed_slots; ++t) {
      sim.generate_slot(t, skipped);
    }
    start_t = ck.completed_slots + 1;
    last_checkpoint_t = ck.completed_slots;
    if (ckpt_resumes != nullptr) ckpt_resumes->add(1);
  }

  Stopwatch watch;
  const auto& net = sim.network();
  const std::size_t num_scns = static_cast<std::size_t>(net.num_scns);
  int completed = start_t - 1;
  // One Slot reused across the horizon: by the second slot its vector
  // capacities are warm and generation allocates nothing. Same for the
  // per-policy assignments, via the select(info, out) reuse overload.
  Slot slot;
  std::vector<Assignment> assignments(policies.size());
  for (int t = start_t; t <= config.horizon; ++t) {
    if (config.stop != nullptr &&
        config.stop->load(std::memory_order_relaxed)) {
      result.interrupted = true;
      break;
    }
    if (faults_on) faults->begin_slot(t);
    sim.generate_slot(t, slot);
    if (admission_on) (void)admission->admit(slot);
    if (faults_on && faults->down_scns() > 0) {
      // A down SCN accepts nothing this slot: its coverage vanishes
      // before any policy sees the SlotInfo.
      for (std::size_t m = 0; m < num_scns; ++m) {
        if (faults->scn_down(static_cast<int>(m))) {
          slot.info.coverage[m].clear();
        }
      }
    }

    // Deliver due delayed batches before any decision for slot t.
    // Batches addressed to an SCN that is down at arrival are lost in
    // flight. Serial per policy — delivery mutates policy state in
    // origin order, and the per-SCN application inside observe_delayed
    // is where the parallelism lives.
    if (delay_slots > 0) {
      for (std::size_t k = 0; k < policies.size(); ++k) {
        auto& queue = in_flight[k];
        std::size_t write = 0;
        for (std::size_t i = 0; i < queue.size(); ++i) {
          if (queue[i].arrival_t != t) {
            if (write != i) queue[write] = std::move(queue[i]);
            ++write;
            continue;
          }
          DelayedBatch batch = std::move(queue[i]);
          for (std::size_t m = 0; m < batch.feedback.per_scn.size(); ++m) {
            auto& items = batch.feedback.per_scn[m];
            if (items.empty()) continue;
            if (faults->scn_down(static_cast<int>(m))) {
              if (k == telemetry_policy) {
                faults->note_inflight_lost(items.size());
              }
              items.clear();
            } else if (k == telemetry_policy) {
              faults->note_late_delivered(items.size());
            }
          }
          policies[k]->observe_delayed(batch.origin_t, batch.feedback);
        }
        queue.resize(write);
      }
    }

    const auto step_policy = [&](std::size_t k) {
      Policy& policy = *policies[k];
      Assignment& assignment = assignments[k];
      if (policy.needs_realizations()) {
        assignment = policy.select_omniscient(slot);
      } else {
        policy.select(slot.info, assignment);
      }
      if (config.validate) {
        if (const auto error = validate_assignment(slot.info, assignment, net)) {
          throw std::logic_error("policy " + std::string(policy.name()) +
                                 " produced invalid assignment at t=" +
                                 std::to_string(t) + ": " + *error);
        }
      }
      result.series[k].add(evaluate_slot(slot, assignment, net));
      if (policy.needs_realizations()) return;
      SlotFeedback feedback = make_feedback(slot, assignment);
      if (!faults_on) {
        policy.observe(slot.info, assignment, feedback);
        return;
      }
      // Route every observation through the fault model: deliver, lose,
      // delay, or corrupt. Fates are pure functions of (seed, t, SCN,
      // local index), so the injected schedule is identical for every
      // policy; counters track the telemetry policy's experience.
      SlotFeedback late;
      late.per_scn.resize(feedback.per_scn.size());
      bool any_late = false;
      for (std::size_t m = 0; m < feedback.per_scn.size(); ++m) {
        auto& items = feedback.per_scn[m];
        std::size_t write = 0;
        for (std::size_t i = 0; i < items.size(); ++i) {
          const auto fate =
              faults->classify(t, static_cast<int>(m), items[i].local_index);
          if (k == telemetry_policy) faults->note_fate(fate);
          switch (fate) {
            case FaultModel::Fate::kDeliver:
              items[write++] = items[i];
              break;
            case FaultModel::Fate::kCorrupted:
              items[write++] = faults->corrupt(t, static_cast<int>(m),
                                               items[i].local_index, items[i]);
              break;
            case FaultModel::Fate::kLost:
              break;
            case FaultModel::Fate::kDelayed:
              if (accepts_delayed[k] != 0) {
                late.per_scn[m].push_back(items[i]);
                any_late = true;
              } else if (k == telemetry_policy) {
                faults->note_late_dropped(1);
              }
              break;
          }
        }
        items.resize(write);
      }
      policy.observe(slot.info, assignment, feedback);
      if (any_late) {
        in_flight[k].push_back({t, t + delay_slots, std::move(late)});
      }
    };
    if (config.parallel_policies && policies.size() > 1) {
      // Each policy touches only its own state, its own series slot and
      // its own delay queue; the slot itself is shared read-only, and
      // fault counters are touched only by the telemetry policy.
      parallel_for(policies.size(), step_policy);
    } else {
      for (std::size_t k = 0; k < policies.size(); ++k) step_policy(k);
    }
    completed = t;
    if (telemetry != nullptr) {
      harness_slots->add(1);
      if (t % sample_every == 0 || t == config.horizon) {
        const SeriesRecorder& rec = result.series[telemetry_policy];
        cum_reward->set(rec.total_reward());
        cum_qos->set(rec.total_qos_violation());
        cum_res->set(rec.total_resource_violation());
        result.telemetry_series.sample(*telemetry, t);
      }
    }
    if (!config.checkpoint_path.empty() && config.checkpoint_every > 0 &&
        t % config.checkpoint_every == 0 && t != config.horizon) {
      write_checkpoint(t);
    }
    if (config.progress_every > 0 && t % config.progress_every == 0) {
      LFSC_LOG_INFO << "slot " << t << "/" << config.horizon << " ("
                    << Table::num(watch.seconds(), 1) << "s)";
    }
  }
  result.completed_slots = completed;
  if (!config.checkpoint_path.empty() &&
      (result.interrupted || completed == config.horizon)) {
    // Final state: on interruption this is what --resume continues
    // from; on completion it doubles as the run's state archive.
    write_checkpoint(completed);
  }
  result.wall_seconds = watch.seconds();
  return result;
}

}  // namespace lfsc
