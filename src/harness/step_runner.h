// The single-slot step engine behind run_experiment and the resident
// service (tools/lfsc_serve): SlotStepper owns everything one slot of
// the experiment loop mutates — the outcome series, the delayed-feedback
// queues, the telemetry sampling cadence and the reusable slot/assignment
// scratch — and exposes it as three verbs:
//
//   step()     execute slot completed_slots()+1 (generate, admit, fault,
//              decide, validate, score, observe, sample telemetry);
//   capture()  snapshot the run's full mutable state as a CheckpointState;
//   restore()  load a CheckpointState (validating roster/horizon/seeds)
//              and fast-forward the world to the completed slot.
//
// run_experiment() is a thin loop over a SlotStepper (stop flag, periodic
// checkpoints, progress logging, wall clock); the serve layer drives the
// same stepper from a command protocol and a wall-clock timer instead.
// Extracting the stepper changes no behavior: a loop over step() is
// bit-identical to the pre-refactor monolithic runner.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "faults/fault_model.h"
#include "harness/checkpoint.h"
#include "metrics/recorder.h"
#include "sim/admission.h"
#include "sim/network.h"
#include "sim/policy.h"
#include "sim/slot_source.h"
#include "telemetry/telemetry.h"

namespace lfsc {

/// The per-slot subset of RunConfig (no loop control: horizon here only
/// feeds the telemetry cadence and the checkpoint sanity field).
struct StepConfig {
  /// Run length recorded into checkpoints and used for the final-slot
  /// telemetry sample. 0 = unbounded (service mode): checkpoints carry
  /// horizon 0 and there is no final-slot sample.
  int horizon = 0;

  bool validate = true;
  bool parallel_policies = false;

  telemetry::Registry* telemetry = nullptr;
  int telemetry_interval = 0;  ///< 0 selects max(1, horizon / 1000)
  int telemetry_policy = 0;

  /// When true (a checkpoint path is configured), the stepper registers
  /// checkpoint.writes / checkpoint.resumes on the telemetry registry;
  /// note_checkpoint_write() and restore() bump them.
  bool checkpoint_counters = false;

  FaultModel* faults = nullptr;
  std::uint32_t slot_budget_us = 0;
  AdmissionControl* admission = nullptr;
};

class SlotStepper {
 public:
  /// `sim` and `policies` (and the faults/admission/telemetry objects in
  /// `config`) must outlive the stepper. Forwards the slot budget and
  /// the delayed-feedback opt-in to every policy — both are run
  /// configuration, so this precedes any restore().
  SlotStepper(SlotSource& sim, std::span<Policy* const> policies,
              const StepConfig& config);

  /// Executes slot completed_slots() + 1 end to end.
  void step();

  int completed_slots() const noexcept { return completed_; }

  /// Snapshots the run's full mutable state (policies, series, delayed
  /// queues, faults, admission, world, telemetry) after the last
  /// completed slot.
  void capture(CheckpointState& out) const;

  /// Restores a capture()d state: validates horizon/roster/blob guards,
  /// loads every policy, the series, the in-flight delayed feedback,
  /// fault/admission/world state and telemetry, then fast-forwards the
  /// world by regenerating the completed slots (unless the source opts
  /// out via SlotSource::replay_fast_forward). Throws std::runtime_error
  /// on any mismatch; the stepper must then be considered poisoned.
  void restore(const CheckpointState& ck);

  /// Bumps checkpoint.writes (call right before writing a capture()).
  void note_checkpoint_write() {
    if (ckpt_writes_ != nullptr) ckpt_writes_->add(1);
  }

  // --- result assembly (the runner moves these out at the end) ---
  std::vector<SeriesRecorder>& series() noexcept { return series_; }
  const std::vector<SeriesRecorder>& series() const noexcept {
    return series_;
  }
  telemetry::TimeSeries& telemetry_series() noexcept {
    return telemetry_series_;
  }

  // --- live reconfiguration (serve layer; call only between slots) ---

  /// The network constants used for assignment validation and slot
  /// scoring — a mutable copy of sim.network(), so the service can move
  /// alpha/beta without rebuilding the world. (Policies hold their own
  /// copy; LfscPolicy::set_constraint_thresholds moves theirs.)
  NetworkConfig& network() noexcept { return net_; }

  /// Changes the telemetry sampling cadence from the next slot on.
  void set_telemetry_interval(int interval);

  /// Re-forwards a new per-slot budget to every policy (0 = unbudgeted).
  void set_slot_budget(std::uint32_t budget_us);

 private:
  struct DelayedBatch {
    int origin_t = 0;
    int arrival_t = 0;
    SlotFeedback feedback;
  };

  void step_policy(std::size_t k, int t);

  SlotSource& sim_;
  std::span<Policy* const> policies_;
  StepConfig config_;
  NetworkConfig net_;
  std::size_t num_scns_ = 0;

  int completed_ = 0;
  std::vector<SeriesRecorder> series_;
  telemetry::TimeSeries telemetry_series_;

  // Fault plumbing (fixed at construction, like the pre-refactor runner).
  bool faults_on_ = false;
  int delay_slots_ = 0;
  std::vector<char> accepts_delayed_;
  std::vector<std::vector<DelayedBatch>> in_flight_;

  // Telemetry handles (null when no registry is attached).
  int sample_every_ = 1;
  std::size_t telemetry_policy_ = 0;
  telemetry::Counter* harness_slots_ = nullptr;
  telemetry::Gauge* cum_reward_ = nullptr;
  telemetry::Gauge* cum_qos_ = nullptr;
  telemetry::Gauge* cum_res_ = nullptr;
  telemetry::Counter* ckpt_writes_ = nullptr;
  telemetry::Counter* ckpt_resumes_ = nullptr;

  // One Slot and one Assignment per policy, reused across the run: by
  // the second slot their vector capacities are warm and the hot path
  // allocates nothing.
  Slot slot_;
  std::vector<Assignment> assignments_;
};

}  // namespace lfsc
