// The experiment loop: generates each slot once and plays every policy on
// the identical realization, enforcing the information flow (honest
// policies see SlotInfo only; the Oracle sees the full slot) and
// validating constraints (1a)/(1b) structurally.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "metrics/recorder.h"
#include "sim/policy.h"
#include "sim/simulator.h"
#include "sim/slot_source.h"

namespace lfsc {

struct RunConfig {
  int horizon = 10000;  ///< number of time slots T

  /// Validate every assignment against (1a)/(1b); violations throw.
  /// The no-coordination LFSC ablation is the one caller that disables
  /// this (it violates (1b) by design).
  bool validate = true;

  /// Log a progress line every N slots (0 disables).
  int progress_every = 0;

  /// Step the policies concurrently within each slot (they are
  /// independent given the slot). Results are bit-identical to the
  /// serial order because policies never share state.
  bool parallel_policies = false;
};

struct ExperimentResult {
  std::vector<SeriesRecorder> series;  ///< aligned with the policy span
  double wall_seconds = 0.0;

  /// Lookup by policy name; throws std::out_of_range when absent.
  const SeriesRecorder& find(std::string_view name) const;
};

/// Runs all policies over `config.horizon` slots of `sim`. Policies are
/// stateful and advanced in lockstep; each sees the same world.
ExperimentResult run_experiment(SlotSource& sim,
                                std::span<Policy* const> policies,
                                const RunConfig& config);

}  // namespace lfsc
