// The experiment loop: generates each slot once and plays every policy on
// the identical realization, enforcing the information flow (honest
// policies see SlotInfo only; the Oracle sees the full slot) and
// validating constraints (1a)/(1b) structurally.
//
// Optional robustness features (DESIGN.md §9): fault injection (SCN
// outages, feedback loss/delay/corruption via a FaultModel), graceful
// interruption, and crash-safe checkpoint/restore with bit-identical
// resume.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "faults/fault_model.h"
#include "metrics/recorder.h"
#include "sim/admission.h"
#include "sim/policy.h"
#include "sim/simulator.h"
#include "sim/slot_source.h"
#include "telemetry/telemetry.h"

namespace lfsc {

struct RunConfig {
  int horizon = 10000;  ///< number of time slots T

  /// Validate every assignment against (1a)/(1b); violations throw.
  /// The no-coordination LFSC ablation is the one caller that disables
  /// this (it violates (1b) by design).
  bool validate = true;

  /// Log a progress line every N slots (0 disables).
  int progress_every = 0;

  /// Step the policies concurrently within each slot (they are
  /// independent given the slot). Results are bit-identical to the
  /// serial order because policies never share state.
  bool parallel_policies = false;

  /// Telemetry capture (DESIGN.md §8). When set, the runner registers
  /// its own `harness.*` metrics on this registry (slot counter plus
  /// cumulative reward/violation gauges mirroring the SeriesRecorder of
  /// `telemetry_policy`) and samples every column into
  /// ExperimentResult::telemetry_series each `telemetry_interval` slots
  /// (and at the final slot). Typically `&LfscPolicy::telemetry()`.
  telemetry::Registry* telemetry = nullptr;

  /// Slots between telemetry samples; 0 selects max(1, horizon / 1000)
  /// (~1000 rows at any scale, T=10000 included).
  int telemetry_interval = 0;

  /// Index into the policy span whose SeriesRecorder feeds the
  /// harness.cum_* gauges (out-of-range values clamp).
  int telemetry_policy = 0;

  /// Fault injection (DESIGN.md §9). When set, the runner advances the
  /// outage process each slot (down SCNs lose their coverage before any
  /// policy sees the slot) and routes every observation through
  /// FaultModel::classify — delivered, lost, delayed delay_slots late,
  /// or corrupted. Policies that accept delayed feedback
  /// (enable_delayed_feedback) get late batches via observe_delayed;
  /// for the rest, late observations are dropped. Fault counters are
  /// recorded for the policy at index `telemetry_policy`.
  FaultModel* faults = nullptr;

  /// Per-slot compute budget in microseconds (DESIGN.md §11), forwarded
  /// to every policy via Policy::set_slot_budget before the first slot
  /// (and before checkpoint restore — budgets are run configuration,
  /// not checkpointed state). Policies that do not implement overload
  /// protection simply ignore it. 0 = no budget; the run is then
  /// bit-identical to one without this field.
  std::uint32_t slot_budget_us = 0;

  /// Admission control (DESIGN.md §11). When set, every generated slot
  /// passes through AdmissionControl::admit before any policy (or the
  /// outage process) sees it: arrivals beyond the bounded queue are
  /// deterministically shed and the backlog drains at the configured
  /// capacity. Saved into checkpoints and restored on resume.
  AdmissionControl* admission = nullptr;

  /// Checkpointing. When `checkpoint_path` is non-empty, every policy
  /// must support checkpointing (supports_checkpoint), and the runner
  /// atomically rewrites the file every `checkpoint_every` slots
  /// (0 = only on graceful stop) and on a stop request.
  std::string checkpoint_path{};
  int checkpoint_every = 0;

  /// Resume from `checkpoint_path` instead of starting at slot 1: the
  /// runner restores every policy, the partial series, in-flight
  /// delayed feedback, fault state and telemetry, fast-forwards the
  /// world by regenerating the completed slots (stateful sources need
  /// the full history), then continues. The resumed run is bit-identical
  /// to an uninterrupted one.
  bool resume = false;

  /// Graceful-stop flag (e.g. flipped by a SIGINT handler). Checked
  /// between slots; when set the runner writes a final checkpoint (if
  /// configured) and returns with ExperimentResult::interrupted.
  const std::atomic<bool>* stop = nullptr;
};

struct ExperimentResult {
  std::vector<SeriesRecorder> series;  ///< aligned with the policy span
  double wall_seconds = 0.0;

  /// Slots actually completed: == the configured horizon for a full
  /// run, less when the stop flag interrupted it.
  int completed_slots = 0;
  bool interrupted = false;

  /// Sampled telemetry columns (empty unless RunConfig::telemetry was
  /// set and the build has LFSC_TELEMETRY=ON). Export with
  /// telemetry::write_json / write_csv.
  telemetry::TimeSeries telemetry_series;

  /// Lookup by policy name; throws std::out_of_range when absent.
  const SeriesRecorder& find(std::string_view name) const;
};

/// Runs all policies over `config.horizon` slots of `sim`. Policies are
/// stateful and advanced in lockstep; each sees the same world.
ExperimentResult run_experiment(SlotSource& sim,
                                std::span<Policy* const> policies,
                                const RunConfig& config);

}  // namespace lfsc
