// Canonical configuration of the paper's evaluation (Sec. 5) and the
// standard policy roster, shared by every figure bench and the
// integration tests so all experiments agree on the world.
#pragma once

#include <memory>
#include <vector>

#include "lfsc/config.h"
#include "sim/coverage.h"
#include "sim/environment.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace lfsc {

struct PaperSetup {
  NetworkConfig net{.num_scns = 30,
                    .capacity_c = 20,
                    .qos_alpha = 15.0,
                    .resource_beta = 27.0};
  EnvironmentConfig env;  ///< defaults already match Sec. 5 (U,V ~ U[0,1], Q ~ U[1,2])
  AbstractCoverageConfig coverage{.num_scns = 30,
                                  .tasks_per_scn_min = 35,
                                  .tasks_per_scn_max = 100,
                                  .coverage_degree = 1.3};
  LfscConfig lfsc;

  /// Applies num_scns and the horizon consistently across sub-configs.
  void set_num_scns(int m) {
    net.num_scns = m;
    env.num_scns = m;
    coverage.num_scns = m;
  }
  void set_horizon(std::size_t t) { lfsc.horizon = t; }
  void set_seed(std::uint64_t seed) {
    env.seed = seed;
    lfsc.seed = seed ^ 0x5eed;
  }

  Simulator make_simulator() const;
};

/// A scaled-down variant of the paper setup for unit/integration tests
/// and quick examples: 6 SCNs, c=5, alpha=3, beta=7, |D_mt| in [8, 20].
PaperSetup small_setup();

/// Builds the standard roster: Oracle, LFSC, vUCB, FML, Random
/// (ownership returned; raw pointers for run_experiment can be taken
/// with policy_pointers()).
std::vector<std::unique_ptr<class Policy>> make_paper_policies(
    const PaperSetup& setup);

/// Raw-pointer view over an owning roster.
std::vector<Policy*> policy_pointers(
    const std::vector<std::unique_ptr<Policy>>& owned);

/// Reads a positive integer override from the environment (used by the
/// benches: LFSC_BENCH_T scales horizons on small machines). Returns
/// `fallback` when unset or unparsable.
int env_int(const char* name, int fallback);

}  // namespace lfsc
