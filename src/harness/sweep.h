// Parallel parameter sweeps: each sweep point runs a full experiment on
// its own Simulator/policy set, farmed to the default thread pool.
// Results are returned in point order regardless of scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/thread_pool.h"

namespace lfsc {

/// Evaluates `fn(i)` for i in [0, count) in parallel and collects the
/// results in order. `fn` must be safe to call concurrently (each point
/// should own its simulator and policies).
template <typename Result>
std::vector<Result> sweep_parallel(std::size_t count,
                                   const std::function<Result(std::size_t)>& fn) {
  std::vector<Result> results(count);
  parallel_for(count, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace lfsc
