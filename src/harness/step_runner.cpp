#include "harness/step_runner.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "metrics/metrics.h"

namespace lfsc {

SlotStepper::SlotStepper(SlotSource& sim, std::span<Policy* const> policies,
                         const StepConfig& config)
    : sim_(sim),
      policies_(policies),
      config_(config),
      net_(sim.network()),
      num_scns_(static_cast<std::size_t>(sim.network().num_scns)),
      assignments_(policies.size()) {
  if (policies_.empty()) {
    throw std::invalid_argument("SlotStepper: at least one policy required");
  }
  series_.reserve(policies_.size());
  for (const Policy* p : policies_) {
    series_.emplace_back(std::string(p->name()));
  }

  // Per-slot compute budget: run configuration, not checkpointed state,
  // so it is forwarded before any restore. Policies without overload
  // protection return false and are simply run unbudgeted.
  if (config_.slot_budget_us > 0) {
    for (Policy* p : policies_) {
      (void)p->set_slot_budget(config_.slot_budget_us);
    }
  }

  // Fault-injection setup. The delay window is fixed by the fault
  // config, so policies opt in (or not) once, before the first slot.
  FaultModel* faults = config_.faults;
  faults_on_ = faults != nullptr && faults->enabled();
  delay_slots_ = faults_on_ && faults->config().delay_prob > 0.0
                     ? faults->config().delay_slots
                     : 0;
  accepts_delayed_.assign(policies_.size(), 0);
  if (delay_slots_ > 0) {
    for (std::size_t k = 0; k < policies_.size(); ++k) {
      if (!policies_[k]->needs_realizations()) {
        accepts_delayed_[k] =
            policies_[k]->enable_delayed_feedback(delay_slots_) ? 1 : 0;
      }
    }
  }
  in_flight_.resize(policies_.size());

  // Telemetry capture: harness-side metrics join the caller's registry
  // so one export carries the policy's internals and the run's outcome
  // series side by side (they cross-check each other in tests).
  telemetry::Registry* telemetry = config_.telemetry;
  sample_every_ = config_.telemetry_interval > 0
                      ? config_.telemetry_interval
                      : std::max(1, config_.horizon / 1000);
  telemetry_policy_ = std::min(
      policies_.size() - 1,
      static_cast<std::size_t>(std::max(0, config_.telemetry_policy)));
  if (telemetry != nullptr) {
    harness_slots_ = &telemetry->counter("harness.slots", "slots");
    cum_reward_ = &telemetry->gauge("harness.cum_reward", "reward");
    cum_qos_ = &telemetry->gauge("harness.cum_qos_violation", "violation");
    cum_res_ =
        &telemetry->gauge("harness.cum_resource_violation", "violation");
    if (config_.checkpoint_counters) {
      ckpt_writes_ = &telemetry->counter("checkpoint.writes", "files");
      ckpt_resumes_ = &telemetry->counter("checkpoint.resumes", "runs");
    }
    if (faults_on_) faults->attach_telemetry(*telemetry);
    if (config_.admission != nullptr && config_.admission->enabled()) {
      config_.admission->attach_telemetry(*telemetry);
    }
  }
}

void SlotStepper::set_telemetry_interval(int interval) {
  sample_every_ =
      interval > 0 ? interval : std::max(1, config_.horizon / 1000);
  config_.telemetry_interval = interval;
}

void SlotStepper::set_slot_budget(std::uint32_t budget_us) {
  config_.slot_budget_us = budget_us;
  for (Policy* p : policies_) {
    (void)p->set_slot_budget(budget_us);
  }
}

void SlotStepper::step_policy(std::size_t k, int t) {
  Policy& policy = *policies_[k];
  Assignment& assignment = assignments_[k];
  FaultModel* faults = config_.faults;
  if (policy.needs_realizations()) {
    assignment = policy.select_omniscient(slot_);
  } else {
    policy.select(slot_.info, assignment);
  }
  if (config_.validate) {
    if (const auto error = validate_assignment(slot_.info, assignment, net_)) {
      throw std::logic_error("policy " + std::string(policy.name()) +
                             " produced invalid assignment at t=" +
                             std::to_string(t) + ": " + *error);
    }
  }
  series_[k].add(evaluate_slot(slot_, assignment, net_));
  if (policy.needs_realizations()) return;
  SlotFeedback feedback = make_feedback(slot_, assignment);
  if (!faults_on_) {
    policy.observe(slot_.info, assignment, feedback);
    return;
  }
  // Route every observation through the fault model: deliver, lose,
  // delay, or corrupt. Fates are pure functions of (seed, t, SCN,
  // local index), so the injected schedule is identical for every
  // policy; counters track the telemetry policy's experience.
  SlotFeedback late;
  late.per_scn.resize(feedback.per_scn.size());
  bool any_late = false;
  for (std::size_t m = 0; m < feedback.per_scn.size(); ++m) {
    auto& items = feedback.per_scn[m];
    std::size_t write = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const auto fate =
          faults->classify(t, static_cast<int>(m), items[i].local_index);
      if (k == telemetry_policy_) faults->note_fate(fate);
      switch (fate) {
        case FaultModel::Fate::kDeliver:
          items[write++] = items[i];
          break;
        case FaultModel::Fate::kCorrupted:
          items[write++] = faults->corrupt(t, static_cast<int>(m),
                                           items[i].local_index, items[i]);
          break;
        case FaultModel::Fate::kLost:
          break;
        case FaultModel::Fate::kDelayed:
          if (accepts_delayed_[k] != 0) {
            late.per_scn[m].push_back(items[i]);
            any_late = true;
          } else if (k == telemetry_policy_) {
            faults->note_late_dropped(1);
          }
          break;
      }
    }
    items.resize(write);
  }
  policy.observe(slot_.info, assignment, feedback);
  if (any_late) {
    in_flight_[k].push_back({t, t + delay_slots_, std::move(late)});
  }
}

void SlotStepper::step() {
  const int t = completed_ + 1;
  FaultModel* faults = config_.faults;
  if (faults_on_) faults->begin_slot(t);
  sim_.generate_slot(t, slot_);
  // Admission control sits upstream of everything: the gateway sheds
  // before outages clear coverage and before any policy decides.
  // Re-checked every slot so a live reconfig (serve) takes effect on
  // the next slot; for a fixed config this is the same branch each time.
  if (config_.admission != nullptr && config_.admission->enabled()) {
    (void)config_.admission->admit(slot_);
  }
  if (faults_on_ && faults->down_scns() > 0) {
    // A down SCN accepts nothing this slot: its coverage vanishes
    // before any policy sees the SlotInfo.
    for (std::size_t m = 0; m < num_scns_; ++m) {
      if (faults->scn_down(static_cast<int>(m))) {
        slot_.info.coverage[m].clear();
      }
    }
  }

  // Deliver due delayed batches before any decision for slot t.
  // Batches addressed to an SCN that is down at arrival are lost in
  // flight. Serial per policy — delivery mutates policy state in
  // origin order, and the per-SCN application inside observe_delayed
  // is where the parallelism lives.
  if (delay_slots_ > 0) {
    for (std::size_t k = 0; k < policies_.size(); ++k) {
      auto& queue = in_flight_[k];
      std::size_t write = 0;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i].arrival_t != t) {
          if (write != i) queue[write] = std::move(queue[i]);
          ++write;
          continue;
        }
        DelayedBatch batch = std::move(queue[i]);
        for (std::size_t m = 0; m < batch.feedback.per_scn.size(); ++m) {
          auto& items = batch.feedback.per_scn[m];
          if (items.empty()) continue;
          if (faults->scn_down(static_cast<int>(m))) {
            if (k == telemetry_policy_) {
              faults->note_inflight_lost(items.size());
            }
            items.clear();
          } else if (k == telemetry_policy_) {
            faults->note_late_delivered(items.size());
          }
        }
        policies_[k]->observe_delayed(batch.origin_t, batch.feedback);
      }
      queue.resize(write);
    }
  }

  if (config_.parallel_policies && policies_.size() > 1) {
    // Each policy touches only its own state, its own series slot and
    // its own delay queue; the slot itself is shared read-only, and
    // fault counters are touched only by the telemetry policy.
    parallel_for(policies_.size(),
                 [this, t](std::size_t k) { step_policy(k, t); });
  } else {
    for (std::size_t k = 0; k < policies_.size(); ++k) step_policy(k, t);
  }
  completed_ = t;
  if (config_.telemetry != nullptr) {
    harness_slots_->add(1);
    if (t % sample_every_ == 0 || t == config_.horizon) {
      const SeriesRecorder& rec = series_[telemetry_policy_];
      cum_reward_->set(rec.total_reward());
      cum_qos_->set(rec.total_qos_violation());
      cum_res_->set(rec.total_resource_violation());
      telemetry_series_.sample(*config_.telemetry, t);
    }
  }
}

void SlotStepper::capture(CheckpointState& out) const {
  out.completed_slots = completed_;
  out.horizon = config_.horizon;
  out.policies.clear();
  out.policies.resize(policies_.size());
  for (std::size_t k = 0; k < policies_.size(); ++k) {
    auto& ps = out.policies[k];
    ps.name = std::string(policies_[k]->name());
    policies_[k]->save_checkpoint(ps.blob);
    const SeriesRecorder& rec = series_[k];
    ps.reward.assign(rec.reward().begin(), rec.reward().end());
    ps.qos.assign(rec.qos_violation().begin(), rec.qos_violation().end());
    ps.res.assign(rec.resource_violation().begin(),
                  rec.resource_violation().end());
    for (const auto& batch : in_flight_[k]) {
      ps.delayed.push_back({batch.origin_t, batch.arrival_t, batch.feedback});
    }
  }
  out.faults_blob.clear();
  out.admission_blob.clear();
  out.scenario_blob.clear();
  if (config_.faults != nullptr) config_.faults->save_state(out.faults_blob);
  if (config_.admission != nullptr) {
    config_.admission->save_state(out.admission_blob);
  }
  sim_.save_state(out.scenario_blob);
  if (config_.telemetry != nullptr) out.metrics = config_.telemetry->snapshot();
  out.telemetry_series = telemetry_series_;
}

void SlotStepper::restore(const CheckpointState& ck) {
  if (ck.horizon != config_.horizon) {
    throw std::runtime_error(
        "run_experiment: checkpoint horizon differs from this run");
  }
  if (ck.policies.size() != policies_.size()) {
    throw std::runtime_error(
        "run_experiment: checkpoint policy roster differs from this run");
  }
  for (std::size_t k = 0; k < policies_.size(); ++k) {
    const auto& ps = ck.policies[k];
    if (ps.name != policies_[k]->name()) {
      throw std::runtime_error(
          "run_experiment: checkpoint policy '" + ps.name +
          "' does not match '" + std::string(policies_[k]->name()) + "'");
    }
    policies_[k]->load_checkpoint(ps.blob);
    series_[k].restore(ps.reward, ps.qos, ps.res);
    in_flight_[k].clear();
    for (const auto& batch : ps.delayed) {
      in_flight_[k].push_back({batch.origin_t, batch.arrival_t,
                               batch.feedback});
    }
  }
  if (config_.faults != nullptr) {
    if (ck.faults_blob.empty()) {
      throw std::runtime_error(
          "run_experiment: checkpoint carries no fault state but fault "
          "injection is configured");
    }
    config_.faults->load_state(ck.faults_blob);
  }
  if (config_.admission != nullptr) {
    if (ck.admission_blob.empty()) {
      throw std::runtime_error(
          "run_experiment: checkpoint carries no admission state but "
          "admission control is configured");
    }
    config_.admission->load_state(ck.admission_blob);
  }
  if (config_.telemetry != nullptr) config_.telemetry->restore(ck.metrics);
  telemetry_series_ = ck.telemetry_series;
  // World-private state (ScenarioSource guards + drift-walk offsets;
  // a no-op for stateless sources) is restored before the
  // fast-forward so a spec/seed mismatch fails before any regeneration.
  sim_.load_state(ck.scenario_blob);
  // Fast-forward the world: stateful sources (mobility) need slots in
  // order, and the task-id sequence must continue where it left off.
  // External sources (serve mode) carry their position in load_state
  // and opt out — their slots came over the wire and cannot be
  // regenerated.
  if (sim_.replay_fast_forward()) {
    Slot skipped;
    for (int t = 1; t <= ck.completed_slots; ++t) {
      sim_.generate_slot(t, skipped);
    }
  }
  completed_ = ck.completed_slots;
  if (ckpt_resumes_ != nullptr) ckpt_resumes_->add(1);
}

}  // namespace lfsc
