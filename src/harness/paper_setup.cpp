#include "harness/paper_setup.h"

#include <cstdlib>
#include <string>

#include "baselines/fml.h"
#include "baselines/oracle.h"
#include "baselines/random_policy.h"
#include "baselines/vucb.h"
#include "lfsc/lfsc_policy.h"

namespace lfsc {

Simulator PaperSetup::make_simulator() const {
  return Simulator(net, env, std::make_unique<AbstractCoverage>(coverage));
}

PaperSetup small_setup() {
  // Half the paper's per-SCN constants and a fifth of its SCNs, but the
  // same task-per-hypercube density (~1.7 tasks per cube per SCN per
  // slot) — the density is what makes the contextual learning regime
  // representative; starving the cubes degenerates every learner to its
  // exploration floor.
  PaperSetup s;
  s.net = NetworkConfig{.num_scns = 4,
                        .capacity_c = 10,
                        .qos_alpha = 7.5,
                        .resource_beta = 13.5};
  s.env.num_scns = 4;
  s.coverage = AbstractCoverageConfig{.num_scns = 4,
                                      .tasks_per_scn_min = 30,
                                      .tasks_per_scn_max = 60,
                                      .coverage_degree = 1.3};
  s.lfsc.horizon = 2000;
  s.lfsc.expected_tasks_per_scn = 45;
  return s;
}

std::vector<std::unique_ptr<Policy>> make_paper_policies(
    const PaperSetup& setup) {
  std::vector<std::unique_ptr<Policy>> policies;
  policies.push_back(std::make_unique<OraclePolicy>(setup.net));
  policies.push_back(std::make_unique<LfscPolicy>(setup.net, setup.lfsc));
  VucbConfig vucb;
  vucb.parts_per_dim = setup.lfsc.parts_per_dim;
  policies.push_back(std::make_unique<VucbPolicy>(setup.net, vucb));
  FmlConfig fml;
  fml.parts_per_dim = setup.lfsc.parts_per_dim;
  policies.push_back(std::make_unique<FmlPolicy>(setup.net, fml));
  policies.push_back(
      std::make_unique<RandomPolicy>(setup.net, setup.env.seed ^ 0xBADA55));
  return policies;
}

std::vector<Policy*> policy_pointers(
    const std::vector<std::unique_ptr<Policy>>& owned) {
  std::vector<Policy*> out;
  out.reserve(owned.size());
  for (const auto& p : owned) out.push_back(p.get());
  return out;
}

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || value <= 0) return fallback;
  return static_cast<int>(value);
}

}  // namespace lfsc
