// Overload protection for the per-slot LFSC pipeline (DESIGN.md §11).
//
// The paper's slot loop (Alg. 1–4) implicitly assumes each slot's
// computation completes before the next slot arrives. Under bursty
// arrivals or CPU contention that assumption breaks; this controller
// gives LfscPolicy a per-slot deadline budget and a staged degradation
// ladder so an overrun sheds *fidelity* deterministically instead of
// falling behind unboundedly:
//
//   rung 0  kFull          full LFSC (Alg. 2 + Alg. 4 + Alg. 3)
//   rung 1  kExploreCapped Alg. 2 replaced by an O(K) closed-form pass
//                          with capped exploration; hypercubes untouched
//                          since their last exact solve reuse the cached
//                          previous-slot probability
//   rung 2  kGreedyOnly    Alg. 2 skipped entirely; greedy edges ranked
//                          by cached weight means; weight updates off
//   rung 3  kShed          the slot is shed (accept nothing)
//
// Every rung still satisfies constraints (1a)/(1b) exactly — degradation
// trades learning fidelity (regret vs. Theorem 2), never feasibility.
//
// When the budget is unset the controller is fully inert: no clock
// reads, no cached state, and the policy's output is bit-identical to a
// build without it (the acceptance contract of the differential fuzz
// harness).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/stopwatch.h"

namespace lfsc {

class BlobReader;
class BlobWriter;

/// Ladder rungs, ordered by increasing degradation. The numeric values
/// are part of the checkpoint format — do not reorder.
enum class DegradeRung : std::uint8_t {
  kFull = 0,
  kExploreCapped = 1,
  kGreedyOnly = 2,
  kShed = 3,
};

/// Stable names for telemetry, logs and the --degrade CLI flag.
std::string_view rung_name(DegradeRung rung) noexcept;

/// Parses a --degrade value ("full", "explore-capped", "greedy-only",
/// "shed"). Returns false on an unknown name ("auto" is handled by the
/// caller — it means "do not force a rung").
bool parse_rung(std::string_view name, DegradeRung& out) noexcept;

struct OverloadConfig {
  /// Per-slot deadline in microseconds; 0 disables the controller
  /// entirely (no clock reads, bit-identical output). The budget covers
  /// the policy's own select()+observe() work for one slot.
  std::uint32_t slot_budget_us = 0;

  /// Pin the ladder to `forced_rung` instead of adapting (tests,
  /// ablations, `--degrade <rung>`). Mutually exclusive with a nonzero
  /// slot_budget_us — a forced rung never reads the clock.
  bool force = false;
  DegradeRung forced_rung = DegradeRung::kFull;

  /// Consecutive comfortable slots (cost <= recover_fraction * budget)
  /// required before climbing back up one rung. Also the base value of
  /// the recovery backoff.
  std::uint32_t recover_after = 8;

  /// Fraction of the budget below which a slot counts as comfortable.
  double recover_fraction = 0.5;

  /// Exploration rate gamma used on the kExploreCapped rung (the
  /// effective rate is min(gamma, degraded_gamma) — degradation never
  /// *increases* exploration).
  double degraded_gamma = 0.05;

  bool enabled() const noexcept { return force || slot_budget_us > 0; }

  /// Throws std::invalid_argument on out-of-range fields or on a forced
  /// rung combined with a budget.
  void validate() const;
};

/// Monotonic counters for the `overload.*` telemetry group. Kept as
/// plain integers (not telemetry handles) so they checkpoint/restore
/// exactly and stay available under LFSC_TELEMETRY=OFF.
struct OverloadCounters {
  std::uint64_t over_budget_slots = 0;  ///< slots whose cost exceeded budget
  std::uint64_t escalations = 0;        ///< ladder moved down one rung
  std::uint64_t recoveries = 0;         ///< ladder climbed back one rung
  std::uint64_t degraded_slots = 0;     ///< slots started on rung 1 or 2
  std::uint64_t shed_slots = 0;         ///< slots started on rung 3
  std::uint64_t updates_skipped = 0;    ///< Alg. 3 passes skipped mid-slot
  std::uint64_t mid_slot_sheds = 0;     ///< Alg. 4 cut short after Alg. 2 overran
};

/// The deadline/ladder state machine. Pure bookkeeping plus one
/// Stopwatch; the deterministic core (apply_measurement) is public so
/// tests can drive the ladder with synthetic costs, no clock involved.
class OverloadController {
 public:
  OverloadController() = default;
  explicit OverloadController(const OverloadConfig& config);

  const OverloadConfig& config() const noexcept { return config_; }
  bool enabled() const noexcept { return config_.enabled(); }

  /// True when the controller actually reads the monotonic clock (a
  /// budget is set and no rung is forced).
  bool timing() const noexcept {
    return !config_.force && config_.slot_budget_us > 0;
  }

  /// Decides the rung for the slot about to run, starts its deadline
  /// clock and counts degraded/shed slots. Call once per slot, before
  /// Alg. 2.
  DegradeRung begin_slot();

  /// Mid-slot deadline check between Alg. 2 and Alg. 4: when the budget
  /// is already blown, the caller sheds the remainder of the slot
  /// (counted separately from ladder escalations; the ladder itself
  /// reacts at end_slot from the full measurement).
  bool should_shed_mid_slot();

  /// Deadline check before the Alg. 3 update phase; true means the
  /// weight/multiplier update should be skipped for this slot.
  bool should_skip_update();

  /// Const deadline peek for the sharded slot phases: true when the
  /// in-flight slot has already blown its budget. Unlike
  /// should_shed_mid_slot() it mutates no counters, so concurrent
  /// per-shard probes are race-free; the slot path still runs the one
  /// counting mid-slot check afterwards. Always false while disabled.
  bool over_budget_probe() const noexcept { return over_budget_now(); }

  /// Stops the slot's deadline clock and feeds the measured cost to the
  /// ladder. Call once per slot, after observe() finishes.
  void end_slot();

  /// The deterministic ladder core: escalates on an over-budget slot,
  /// recovers after `recover_after` consecutive comfortable slots, and
  /// applies exponential backoff to recovery probes that immediately
  /// fail (so a workload that cannot afford rung r-1 settles at rung r
  /// instead of oscillating and blowing the budget every probe).
  void apply_measurement(double cost_us);

  DegradeRung rung() const noexcept { return rung_; }
  const OverloadCounters& counters() const noexcept { return counters_; }

  /// Elapsed cost of the current slot in microseconds (only meaningful
  /// while timing()).
  double elapsed_us() const noexcept { return watch_.seconds() * 1e6; }

  void reset();

  /// Live reconfiguration (serve layer, DESIGN.md §14): replaces the
  /// per-slot budget between slots while preserving the monotonic
  /// counters (unlike rebuilding the controller, which would zero them
  /// under the telemetry layer's delta publishing). Setting 0 disables
  /// the deadline: the ladder walks back to kFull, counting one recovery
  /// per rung so escalations − recoveries == rung stays invariant. Any
  /// change resets the comfortable-streak/backoff probe state. Throws
  /// std::logic_error on a forced-rung controller (a forced rung never
  /// reads the clock — force and a budget stay mutually exclusive).
  void set_budget(std::uint32_t budget_us);

  /// Exact ladder + counter state for the checkpoint image. The config
  /// itself is not serialized — it is reconstructed from LfscConfig.
  void save(BlobWriter& out) const;
  void load(BlobReader& in);

 private:
  bool over_budget_now() const noexcept {
    return timing() && elapsed_us() > static_cast<double>(config_.slot_budget_us);
  }

  OverloadConfig config_{};
  DegradeRung rung_ = DegradeRung::kFull;
  OverloadCounters counters_{};
  Stopwatch watch_;

  std::uint32_t comfortable_streak_ = 0;
  /// Comfortable slots currently required before a recovery; starts at
  /// recover_after, doubles on each failed probe, resets when a probe
  /// survives recover_after slots.
  std::uint32_t backoff_ = 8;
  /// Slots since the last recovery, saturated at recover_after (the
  /// probe observation window).
  std::uint32_t slots_since_recovery_ = 8;
};

}  // namespace lfsc
