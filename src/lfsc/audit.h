// Invariant auditor for the LFSC learner state (DESIGN.md §11).
//
// Each function checks one family of invariants and returns an empty
// string on success, or a one-line human-readable description of the
// first violation found. The checks are pure, allocation-free reads over
// spans of the live state — safe to run from the owning thread at any
// slot boundary (LfscPolicy::audit_now runs them serially, on a stride
// or on demand). Violations are *contained*, not fatal: the policy
// quarantines the offending SCN to the greedy-only rung and keeps
// serving slots, emitting `audit.*` telemetry instead of crashing.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace lfsc {

/// Weight-table invariants: `scale` finite and > 0; every weight finite,
/// strictly positive, and <= scale within rounding slack. (There is no
/// lower-bound check against the positivity floor: floors are pinned
/// relative to the scale at update time, so after lazy renormalization a
/// legitimately-floored cell may sit below scale * 1e-12.)
std::string audit_weight_table(std::span<const double> weights, double scale);

/// Alg. 2 output invariants: every p finite and in [0, 1] (with epsilon
/// slack); capped arms have p == 1. When `exact_solve` the vector came
/// from a full Exp3.M solve, so additionally sum(p) == min(c, K) within
/// association-noise tolerance. Degraded (rung 1) vectors clip per-arm
/// and intentionally do not preserve the sum — pass exact_solve = false.
std::string audit_probabilities(std::span<const double> p,
                                std::span<const std::uint8_t> capped, int c,
                                bool exact_solve);

/// Lagrange-multiplier invariants: both finite and within the projection
/// interval [0, lambda_max] (with epsilon slack).
std::string audit_multipliers(double lambda_qos, double lambda_resource,
                              double lambda_max);

}  // namespace lfsc
