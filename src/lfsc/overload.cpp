#include "lfsc/overload.h"

#include <cmath>
#include <stdexcept>

#include "common/binio.h"

namespace lfsc {

namespace {
/// Cap on the recovery backoff: past this the ladder has effectively
/// stopped probing (also keeps the doubling from overflowing).
constexpr std::uint32_t kMaxBackoff = 1u << 20;
}  // namespace

std::string_view rung_name(DegradeRung rung) noexcept {
  switch (rung) {
    case DegradeRung::kFull:
      return "full";
    case DegradeRung::kExploreCapped:
      return "explore-capped";
    case DegradeRung::kGreedyOnly:
      return "greedy-only";
    case DegradeRung::kShed:
      return "shed";
  }
  return "?";
}

bool parse_rung(std::string_view name, DegradeRung& out) noexcept {
  if (name == "full") {
    out = DegradeRung::kFull;
  } else if (name == "explore-capped") {
    out = DegradeRung::kExploreCapped;
  } else if (name == "greedy-only") {
    out = DegradeRung::kGreedyOnly;
  } else if (name == "shed") {
    out = DegradeRung::kShed;
  } else {
    return false;
  }
  return true;
}

void OverloadConfig::validate() const {
  if (force && slot_budget_us > 0) {
    throw std::invalid_argument(
        "OverloadConfig: a forced rung and a slot budget are mutually "
        "exclusive (a forced rung never reads the clock)");
  }
  if (recover_after < 1) {
    throw std::invalid_argument("OverloadConfig: recover_after must be >= 1");
  }
  if (!(recover_fraction > 0.0) || recover_fraction > 1.0) {
    throw std::invalid_argument(
        "OverloadConfig: recover_fraction must be in (0, 1]");
  }
  if (!(degraded_gamma >= 0.0) || degraded_gamma > 1.0 ||
      !std::isfinite(degraded_gamma)) {
    throw std::invalid_argument(
        "OverloadConfig: degraded_gamma must be in [0, 1]");
  }
}

OverloadController::OverloadController(const OverloadConfig& config)
    : config_(config),
      backoff_(config.recover_after),
      slots_since_recovery_(config.recover_after) {
  config_.validate();
}

DegradeRung OverloadController::begin_slot() {
  const DegradeRung r = config_.force ? config_.forced_rung : rung_;
  if (r == DegradeRung::kShed) {
    ++counters_.shed_slots;
  } else if (r != DegradeRung::kFull) {
    ++counters_.degraded_slots;
  }
  if (timing()) watch_.reset();
  return r;
}

bool OverloadController::should_shed_mid_slot() {
  if (!over_budget_now()) return false;
  ++counters_.mid_slot_sheds;
  return true;
}

bool OverloadController::should_skip_update() {
  if (!over_budget_now()) return false;
  ++counters_.updates_skipped;
  return true;
}

void OverloadController::end_slot() {
  if (timing()) apply_measurement(elapsed_us());
}

void OverloadController::apply_measurement(double cost_us) {
  if (config_.force || config_.slot_budget_us == 0) return;
  const double budget = static_cast<double>(config_.slot_budget_us);

  bool recovered_now = false;
  if (cost_us > budget) {
    ++counters_.over_budget_slots;
    comfortable_streak_ = 0;
    if (rung_ < DegradeRung::kShed) {
      // An over-budget slot immediately after a recovery means the probe
      // failed: the workload cannot afford the higher-fidelity rung yet.
      // Back off exponentially so repeated probes don't blow the budget
      // every recover_after slots.
      if (slots_since_recovery_ < config_.recover_after) {
        if (backoff_ < kMaxBackoff) backoff_ *= 2;
        // The failed probe closes its observation window — otherwise the
        // window would keep running after the escalation and reset the
        // backoff the moment it fills, undoing the doubling above.
        slots_since_recovery_ = config_.recover_after;
      }
      rung_ = static_cast<DegradeRung>(static_cast<std::uint8_t>(rung_) + 1);
      ++counters_.escalations;
    }
  } else if (rung_ != DegradeRung::kFull &&
             cost_us <= config_.recover_fraction * budget) {
    if (++comfortable_streak_ >= backoff_) {
      rung_ = static_cast<DegradeRung>(static_cast<std::uint8_t>(rung_) - 1);
      ++counters_.recoveries;
      comfortable_streak_ = 0;
      slots_since_recovery_ = 0;
      recovered_now = true;
    }
  } else {
    comfortable_streak_ = 0;
  }

  if (!recovered_now && slots_since_recovery_ < config_.recover_after) {
    // The most recent recovery probe survived its observation window:
    // trust the recovered rung again and reset the backoff.
    if (++slots_since_recovery_ == config_.recover_after) {
      backoff_ = config_.recover_after;
    }
  }
}

void OverloadController::set_budget(std::uint32_t budget_us) {
  if (config_.force) {
    throw std::logic_error(
        "OverloadController: cannot set a budget on a forced rung");
  }
  config_.slot_budget_us = budget_us;
  if (budget_us == 0) {
    while (rung_ != DegradeRung::kFull) {
      rung_ = static_cast<DegradeRung>(static_cast<std::uint8_t>(rung_) - 1);
      ++counters_.recoveries;
    }
  }
  comfortable_streak_ = 0;
  backoff_ = config_.recover_after;
  slots_since_recovery_ = config_.recover_after;
}

void OverloadController::reset() {
  rung_ = DegradeRung::kFull;
  counters_ = OverloadCounters{};
  comfortable_streak_ = 0;
  backoff_ = config_.recover_after;
  slots_since_recovery_ = config_.recover_after;
}

void OverloadController::save(BlobWriter& out) const {
  out.u8(static_cast<std::uint8_t>(rung_));
  out.u32(comfortable_streak_);
  out.u32(backoff_);
  out.u32(slots_since_recovery_);
  out.u64(counters_.over_budget_slots);
  out.u64(counters_.escalations);
  out.u64(counters_.recoveries);
  out.u64(counters_.degraded_slots);
  out.u64(counters_.shed_slots);
  out.u64(counters_.updates_skipped);
  out.u64(counters_.mid_slot_sheds);
}

void OverloadController::load(BlobReader& in) {
  const std::uint8_t rung = in.u8();
  if (rung > static_cast<std::uint8_t>(DegradeRung::kShed)) {
    throw std::runtime_error("OverloadController: corrupt rung in checkpoint");
  }
  rung_ = static_cast<DegradeRung>(rung);
  comfortable_streak_ = in.u32();
  backoff_ = in.u32();
  slots_since_recovery_ = in.u32();
  counters_.over_budget_slots = in.u64();
  counters_.escalations = in.u64();
  counters_.recoveries = in.u64();
  counters_.degraded_slots = in.u64();
  counters_.shed_slots = in.u64();
  counters_.updates_skipped = in.u64();
  counters_.mid_slot_sheds = in.u64();
}

}  // namespace lfsc
