// Lagrange multipliers for the QoS (1c) and resource (1d) constraints
// (Alg. 3 lines 15-17): regularized projected dual ascent.
//
//   lambda_qos  <- clip((1 - eta*delta)*lambda_qos + eta*(alpha - sum v)/alpha)
//   lambda_res  <- clip((1 - eta*delta)*lambda_res + eta*(sum q - beta)/beta)
//
// Gaps are normalized by alpha/beta so one step size serves both
// constraints; clip projects onto [0, lambda_max].
#pragma once

#include <algorithm>
#include <cmath>

namespace lfsc {

class LagrangeMultipliers {
 public:
  LagrangeMultipliers(double eta, double delta, double lambda_max) noexcept
      : eta_(eta), delta_(delta), lambda_max_(lambda_max) {}

  double qos() const noexcept { return lambda_qos_; }
  double resource() const noexcept { return lambda_res_; }

  /// One dual step from this slot's realized totals for one SCN.
  /// `completed_sum` = sum of v over selected tasks; `resource_sum` =
  /// sum of q over selected tasks.
  void update(double completed_sum, double resource_sum, double alpha,
              double beta) noexcept {
    const double qos_gap = alpha > 0.0 ? (alpha - completed_sum) / alpha : 0.0;
    const double res_gap = beta > 0.0 ? (resource_sum - beta) / beta : 0.0;
    lambda_qos_ =
        project((1.0 - eta_ * delta_) * lambda_qos_ + eta_ * qos_gap,
                lambda_qos_);
    lambda_res_ =
        project((1.0 - eta_ * delta_) * lambda_res_ + eta_ * res_gap,
                lambda_res_);
  }

  /// True when both multipliers are finite (they always should be —
  /// project() drops non-finite steps — but the fault-injection tests
  /// assert it explicitly).
  bool finite() const noexcept {
    return std::isfinite(lambda_qos_) && std::isfinite(lambda_res_);
  }

  void reset() noexcept {
    lambda_qos_ = 0.0;
    lambda_res_ = 0.0;
  }

  /// Restores persisted multiplier values (projected into the box);
  /// used by LfscPolicy::load().
  void restore(double qos, double resource) noexcept {
    lambda_qos_ = project(qos, 0.0);
    lambda_res_ = project(resource, 0.0);
  }

 private:
  /// Projection onto [0, lambda_max], hardened against poisoned slot
  /// sums: a non-finite dual step (NaN gap from a corrupted observation
  /// that slipped through upstream sanitization) keeps the previous
  /// multiplier rather than absorbing the step — std::clamp(NaN, ...)
  /// would return NaN and the multiplier would contaminate every
  /// subsequent weight update.
  double project(double value, double previous) const noexcept {
    return std::isfinite(value) ? std::clamp(value, 0.0, lambda_max_)
                                : previous;
  }

  double eta_;
  double delta_;
  double lambda_max_;
  double lambda_qos_ = 0.0;
  double lambda_res_ = 0.0;
};

}  // namespace lfsc
