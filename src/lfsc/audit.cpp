#include "lfsc/audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lfsc {

namespace {
std::string describe(const char* what, std::size_t index, double value) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s at cell %zu: %.17g", what, index, value);
  return buf;
}
}  // namespace

std::string audit_weight_table(std::span<const double> weights, double scale) {
  if (!std::isfinite(scale) || scale <= 0.0) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "weight_scale not finite-positive: %.17g",
                  scale);
    return buf;
  }
  // Slack on the upper bound: weight_scale is a running *upper bound*
  // maintained with the same roundings as the weights themselves.
  const double limit = scale * (1.0 + 1e-9);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i];
    if (!std::isfinite(w)) return describe("non-finite weight", i, w);
    if (w <= 0.0) return describe("non-positive weight", i, w);
    if (w > limit) return describe("weight above scale bound", i, w);
  }
  return {};
}

std::string audit_probabilities(std::span<const double> p,
                                std::span<const std::uint8_t> capped, int c,
                                bool exact_solve) {
  constexpr double kSlack = 1e-9;
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i];
    if (!std::isfinite(pi)) return describe("non-finite probability", i, pi);
    if (pi < -kSlack || pi > 1.0 + kSlack) {
      return describe("probability outside [0,1]", i, pi);
    }
    if (i < capped.size() && capped[i] && std::fabs(pi - 1.0) > 1e-9) {
      return describe("capped arm with p != 1", i, pi);
    }
    sum += pi;
  }
  if (exact_solve && !p.empty()) {
    const double expect =
        std::min<double>(static_cast<double>(c), static_cast<double>(p.size()));
    const double tol = 1e-6 * std::max<double>(1.0, static_cast<double>(p.size()));
    if (std::fabs(sum - expect) > tol) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "sum(p) = %.17g, expected min(c, K) = %.17g", sum, expect);
      return buf;
    }
  }
  return {};
}

std::string audit_multipliers(double lambda_qos, double lambda_resource,
                              double lambda_max) {
  constexpr double kSlack = 1e-9;
  const auto check = [&](const char* name, double v) -> std::string {
    if (!std::isfinite(v) || v < -kSlack || v > lambda_max + kSlack) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "%s multiplier out of [0, %.3g]: %.17g",
                    name, lambda_max, v);
      return buf;
    }
    return {};
  };
  std::string err = check("qos", lambda_qos);
  if (err.empty()) err = check("resource", lambda_resource);
  return err;
}

}  // namespace lfsc
