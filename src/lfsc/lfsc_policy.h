// LFSC — the paper's online learning framework (Alg. 1), combining:
//   * Calculating  (Alg. 2): Exp3.M capped selection probabilities over
//     the tasks in each SCN's coverage, with weights kept per context
//     hypercube;
//   * GreedySelect (Alg. 4): collaborative cross-SCN assignment on the
//     probability-weighted bipartite graph;
//   * Updating     (Alg. 3): IPW estimates, exponential weight update
//     with Lagrangian constraint terms, and dual ascent on the
//     multipliers.
//
// Performance contract (see DESIGN.md "Performance"): the per-slot path
// select() -> observe() performs no heap allocation in steady state
// beyond the returned Assignment; the weight update is O(touched cells)
// per SCN, not O(table); and every SCN draws from its own stream-keyed
// RngStream, so the per-SCN phases can run on a thread pool
// (LfscConfig::parallel_scns) with bit-identical results for any worker
// count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "bandit/estimators.h"
#include "bandit/exp3m.h"
#include "bandit/partition.h"
#include "common/rng.h"
#include "lfsc/config.h"
#include "lfsc/lagrange.h"
#include "lfsc/overload.h"
#include "sim/policy.h"
#include "solver/greedy_assignment.h"
#include "telemetry/telemetry.h"

namespace lfsc {

class LfscPolicy final : public Policy {
 public:
  LfscPolicy(const NetworkConfig& net, LfscConfig config = {});

  std::string_view name() const noexcept override { return "LFSC"; }
  Assignment select(const SlotInfo& info) override;
  void observe(const SlotInfo& info, const Assignment& assignment,
               const SlotFeedback& feedback) override;
  void reset() override;

  // --- degraded feedback (DESIGN.md §9) ---

  /// Accepts delayed bandit feedback up to `max_delay` slots late. At
  /// observe(t) the policy freezes the slot's update inputs (eta_t, the
  /// multipliers, each selected task's probability and its hypercube's
  /// IPW divisor); a late batch then composes exactly with the on-time
  /// update, because exponential weight updates with frozen inputs are
  /// multiplicative across partial batches. Lagrange dual ascent runs
  /// once per slot from the on-time arrivals only (documented deviation
  /// from Alg. 3 — late constraint totals would re-run the projection).
  bool enable_delayed_feedback(int max_delay) override;
  void observe_delayed(int origin_t, const SlotFeedback& feedback) override;

  // --- overload protection (DESIGN.md §11) ---

  /// Installs a per-slot deadline budget, merging it into
  /// config().overload and rebuilding the degradation controller. Must
  /// precede the first slot. Under a budget the policy walks the staged
  /// ladder (full -> explore-capped -> greedy-only -> shed) instead of
  /// overrunning; with no budget and no forced rung the controller is
  /// inert (zero clock reads, bit-identical output).
  bool set_slot_budget(std::uint32_t budget_us) override;

  /// The ladder/deadline state machine (rung, overload.* counters).
  const OverloadController& overload() const noexcept { return overload_; }

  /// Runs the invariant auditor (src/lfsc/audit) over every
  /// non-quarantined SCN now: weight-table finiteness/positivity and
  /// scale bound, Alg. 2 probability range and Σp budget, multiplier
  /// projection bounds. A violating SCN is quarantined to the
  /// greedy-only rung (it keeps serving slots, stops learning) and
  /// counted under audit.*. Returns the number of new violations.
  /// observe() calls this on the configured audit_stride.
  int audit_now();

  bool quarantined(int scn) const {
    return quarantined_[static_cast<std::size_t>(scn)] != 0;
  }
  std::uint64_t audit_checks() const noexcept { return audit_checks_; }
  std::uint64_t audit_violations() const noexcept { return audit_violations_; }
  /// One-line description of the most recent violation ("" when clean).
  const std::string& last_audit_detail() const noexcept {
    return last_audit_detail_;
  }

  /// Test/fault-injection hook: overwrites one hypercube weight
  /// directly, bypassing every guard the update path has. The auditor
  /// exists to catch exactly this kind of corruption.
  void debug_set_weight(int scn, std::size_t cell, double value) {
    scn_state_[static_cast<std::size_t>(scn)].weights[cell] = value;
  }

  // --- crash-safe checkpointing (DESIGN.md §9) ---

  /// Unlike save()/load() (a portable, max-normalized warm-start blob),
  /// the checkpoint is an exact binary image — raw-scaled weights,
  /// per-SCN RNG stream states and the delayed-feedback ring — so a
  /// resumed run continues bit-identically for any parallel_scns.
  bool supports_checkpoint() const noexcept override { return true; }
  void save_checkpoint(std::string& out) const override;
  void load_checkpoint(std::string_view blob) override;

  // --- introspection (tests, diagnostics, ablation benches) ---

  const LfscConfig& config() const noexcept { return config_; }
  const HypercubePartition& partition() const noexcept { return partition_; }

  /// Hypercube weights of SCN `m`, normalized so max == 1. Weights are
  /// kept raw-scaled internally (lazy renormalization); this accessor
  /// flushes the pending renormalization before returning the view.
  const std::vector<double>& weights(int scn);

  double lambda_qos(int scn) const {
    return scn_state_[static_cast<std::size_t>(scn)].multipliers.qos();
  }
  double lambda_resource(int scn) const {
    return scn_state_[static_cast<std::size_t>(scn)].multipliers.resource();
  }

  /// Selection probabilities computed by the last select() call for SCN
  /// `m`, aligned with coverage[m]. Empty before the first slot.
  const std::vector<double>& last_probabilities(int scn) const {
    return scn_state_[static_cast<std::size_t>(scn)].last.p;
  }

  /// Full Alg. 2 output of the last select() for SCN `m` — probabilities
  /// plus the capped set S', |S'| and ε_t. Used by the differential
  /// harness (tools/lfsc_diff_fuzz) to compare the optimized solve
  /// against the reference transliteration slot by slot.
  const CappedProbabilities& last_result(int scn) const {
    return scn_state_[static_cast<std::size_t>(scn)].last;
  }

  /// Effective exploration rate in use.
  double gamma() const noexcept { return gamma_; }

  /// The policy's telemetry registry (DESIGN.md §8): per-subroutine
  /// timers, Lagrange-multiplier gauges, per-SCN acceptance counters and
  /// cap-set / hypercube-occupancy histograms. Per-SCN metrics are
  /// sharded with stream = SCN index, so the parallel_scns phases record
  /// race-free and aggregates merge deterministically. The registry is
  /// live even under LFSC_TELEMETRY=OFF (every read returns zero).
  telemetry::Registry& telemetry() noexcept { return telemetry_; }
  const telemetry::Registry& telemetry() const noexcept { return telemetry_; }

  // --- persistence (warm-starting a deployment) ---

  /// Writes the learned state (hypercube weights and Lagrange
  /// multipliers per SCN) as a versioned text blob. Weights are emitted
  /// max-normalized, so the blob is independent of the internal raw
  /// scale (and byte-identical across serial/parallel slot paths).
  void save(std::ostream& out) const;

  /// Restores state written by save(). Throws std::runtime_error on a
  /// malformed blob or a shape mismatch (different SCN count or
  /// partition).
  void load(std::istream& in);

 private:
  struct ScnState {
    std::vector<double> weights;  ///< per hypercube (raw scale)
    LagrangeMultipliers multipliers;
    CappedProbabilities last;     ///< p/capped aligned with coverage[m]
    std::vector<std::size_t> last_cells;  ///< hypercube of each covered task
    RngStream rng;  ///< stream-keyed (seed, kScnStreamBase + m)
    /// Running upper bound on max(weights); weights are only rescaled to
    /// max == 1 when this drifts outside the representable band (lazy
    /// renormalization, O(cells) but rare) or when an exact normalized
    /// view is needed (weights() accessor, save()).
    double weight_scale = 1.0;

    /// Per-hypercube probability cache for the explore-capped rung
    /// (DESIGN.md §11): cell_prob[cell] holds the probability the last
    /// *exact* Alg. 2 solve assigned to tasks of that cell, or -1 when
    /// the cell's weight changed since (invalidated on every weight
    /// update). Written only while the overload controller is active.
    std::vector<double> cell_prob;
    /// 1 when `last` came from a full Exp3.M solve (its Σp budget is an
    /// invariant the auditor may check); 0 after a degraded pass.
    std::uint8_t last_solve_exact = 0;

    // Per-slot scratch: reused across slots, no steady-state allocation.
    std::vector<double> task_weights;        ///< weight lookup per covered task
    Exp3mScratch exp3m_scratch;              ///< Alg. 2 fixed-point buffers
    IpwSlotAccumulator acc;                  ///< Alg. 3 IPW accumulator
    std::vector<char> cube_capped;           ///< dense capped flags
    std::vector<std::size_t> capped_cells;   ///< cells flagged this slot
    std::vector<std::uint32_t> late_cells;   ///< per-batch cells (delayed apply)
    std::vector<double> late_payoff;         ///< per-batch payoff sums

    ScnState(std::size_t cells, double eta_lambda, double delta,
             double lambda_max, RngStream stream)
        : weights(cells, 1.0),
          multipliers(eta_lambda, delta, lambda_max),
          rng(stream),
          cell_prob(cells, -1.0),
          acc(cells),
          cube_capped(cells, 0) {}
  };

  // Frozen per-slot update inputs for late feedback (enable_delayed_
  // feedback). One entry per selected task in an *uncapped* hypercube —
  // capped cubes skip the weight update entirely, so their late
  // arrivals have nothing to apply.
  struct PendingEntry {
    std::int32_t local = 0;   ///< local index within coverage[m]
    std::uint32_t cell = 0;   ///< the task's hypercube
    double p = 0.0;           ///< selection probability at decision time
    double inv_n = 0.0;       ///< 1 / (cell's IPW divisor that slot)
  };
  struct PendingScn {
    double eta_t = 0.0;
    double lambda_qos = 0.0;
    double lambda_res = 0.0;
    std::vector<PendingEntry> entries;
  };
  struct PendingSlot {
    int t = -1;  ///< origin slot, -1 = vacant
    std::vector<PendingScn> per_scn;
  };

  /// Alg. 2 for one SCN: fills last (probabilities/capped) and
  /// last_cells. Touches only SCN-local state — safe to run per-SCN in
  /// parallel.
  void calculate_probabilities(std::size_t m, const SlotInfo& info);

  /// Degraded Alg. 2 for the explore-capped rung (DESIGN.md §11): a
  /// single O(K) closed-form pass — cells untouched since their last
  /// exact solve reuse the cached probability, the rest get the Exp3.M
  /// marginal with capped exploration, clipped per arm instead of
  /// solving the ε_t fixed point. Draws no RNG.
  void calculate_probabilities_degraded(std::size_t m, const SlotInfo& info);

  /// Alg. 3 weight + multiplier update for one SCN from the feedback
  /// that arrived on time (all of it when no faults are injected).
  /// `selected` is the SCN's slice of the assignment, needed to freeze
  /// pending entries for late arrivals. Touches only SCN-local state.
  void update_scn(std::size_t m, const SlotInfo& info,
                  const std::vector<int>& selected,
                  const std::vector<TaskFeedback>& feedback);

  /// Constraint-only Alg. 3 for slots/SCNs whose weight update is off
  /// (greedy-only rung, shed slots, quarantined SCNs, deadline-skipped
  /// updates): sanity-filters the feedback, steps the dual ascent from
  /// the realized sums, and clears the slot's frozen pending entries so
  /// late arrivals have nothing to apply.
  void update_scn_multiplier_only(std::size_t m, const SlotInfo& info,
                                  const std::vector<TaskFeedback>& feedback);

  /// The rung SCN `m` runs at this slot: the slot rung, floored to
  /// greedy-only for quarantined SCNs.
  DegradeRung effective_rung(std::size_t m) const noexcept {
    DegradeRung r = slot_rung_;
    if (quarantine_count_ > 0 && quarantined_[m] != 0 &&
        r < DegradeRung::kGreedyOnly) {
      r = DegradeRung::kGreedyOnly;
    }
    return r;
  }

  /// Registers the overload.*/audit.* telemetry handles (idempotent);
  /// called once the controller or the auditor becomes active.
  void ensure_overload_telemetry();

  /// Publishes the controller's counters/rung to telemetry as deltas
  /// against the last published snapshot (exact across checkpoints).
  void publish_overload_telemetry();

  /// Applies one late batch for SCN `m` against the frozen slot state.
  void apply_delayed_scn(std::size_t m, const PendingScn& pend,
                         const std::vector<TaskFeedback>& arrived);

  /// Rescales `state.weights` so max == 1 (with the 1e-12 positivity
  /// floor) and resets weight_scale. O(cells); called lazily.
  static void renormalize(ScnState& state);

  /// Runs fn(m) for every SCN — serially, or on the configured thread
  /// pool when config_.parallel_scns is set.
  template <typename Fn>
  void for_each_scn(const Fn& fn);

  NetworkConfig net_;
  LfscConfig config_;
  HypercubePartition partition_;
  double gamma_;
  double eta_lambda_;
  double delta_;
  std::vector<ScnState> scn_state_;
  int last_slot_t_ = -1;

  // --- overload protection (DESIGN.md §11) ---
  OverloadController overload_;
  /// Rung chosen by begin_slot() for the slot currently in flight;
  /// kFull whenever the controller is inert. May drop to kShed mid-slot
  /// when the budget is blown between Alg. 2 and Alg. 4.
  DegradeRung slot_rung_ = DegradeRung::kFull;
  /// True while the controller is active: the exact-solve path then
  /// maintains the per-cell probability cache the explore-capped rung
  /// reuses. Kept false when inert so the hot loops skip the cache
  /// writes entirely.
  bool cache_active_ = false;
  std::vector<std::uint8_t> quarantined_;  ///< per SCN, set by the auditor
  int quarantine_count_ = 0;
  std::uint64_t audit_checks_ = 0;
  std::uint64_t audit_violations_ = 0;
  std::string last_audit_detail_;

  /// Delayed-feedback ring, indexed origin_t % (max_delay_ + 1); empty
  /// until enable_delayed_feedback(). A slot's frozen state lives until
  /// the ring wraps, which by the harness contract is after its delivery
  /// window closed.
  std::vector<PendingSlot> pending_;
  int max_delay_ = 0;

  /// Maps every task of the current slot to its hypercube, computed once
  /// per slot: coverage overlap means per-SCN indexing would redo the
  /// partition lookup coverage_degree times per task.
  std::vector<std::size_t> task_cells_;

  // Slot-level scratch for the collaborative path. Edges are produced
  // already grouped by SCN (bucket m covers
  // [bucket_start_[m], bucket_start_[m+1])) and packed into single
  // uint64 keys (pack_greedy_entry), so greedy_select_packed skips the
  // validation and counting-sort passes of the generic API and its
  // heaps compare/move 8 bytes per edge.
  std::vector<int> bucket_start_;          ///< per-SCN ranges into entries
  std::vector<std::uint64_t> entries_;     ///< packed bucketed edge buffer
  /// Unpacked edge buffer for slots whose task count exceeds the packed
  /// 16-bit task field; same keys and order, wider fields.
  std::vector<GreedyBucketEntry> wide_entries_;
  GreedySelectScratch greedy_scratch_;

  // Telemetry (DESIGN.md §8). Handles are registered once in the
  // constructor; under LFSC_TELEMETRY=OFF every call through them is an
  // inline no-op. Per-SCN metrics use stream = m.
  telemetry::Registry telemetry_;
  telemetry::Timer* tel_select_;       ///< lfsc.select (whole Alg. 1 decision)
  telemetry::Timer* tel_observe_;      ///< lfsc.observe (whole Alg. 3 phase)
  telemetry::Timer* tel_calculating_;  ///< lfsc.alg2.calculating, phase/slot
  telemetry::Timer* tel_greedy_;       ///< lfsc.alg4.greedy_select
  telemetry::Timer* tel_updating_;     ///< lfsc.alg3.updating, phase/slot
  telemetry::Counter* tel_slots_;      ///< lfsc.slots
  telemetry::Counter* tel_accepted_;   ///< lfsc.scn.accepted, per SCN
  telemetry::Counter* tel_rejected_;   ///< lfsc.feedback.rejected, per SCN
  telemetry::Gauge* tel_lambda_qos_;   ///< lfsc.lagrange.qos = λ_m (1c)
  telemetry::Gauge* tel_lambda_res_;   ///< lfsc.lagrange.resource = λ'_m (1d)
  telemetry::Histogram* tel_capset_;   ///< lfsc.exp3m.capset_size, |S'| per SCN-slot
  telemetry::Histogram* tel_occupancy_;  ///< lfsc.cells.touched per SCN-slot

  // Overload/audit telemetry (registered lazily by
  // ensure_overload_telemetry; null while both subsystems are inert).
  telemetry::Gauge* tel_overload_rung_ = nullptr;  ///< overload.rung
  telemetry::Counter* tel_overload_degraded_ = nullptr;   ///< overload.slots_degraded
  telemetry::Counter* tel_overload_shed_ = nullptr;       ///< overload.slots_shed
  telemetry::Counter* tel_overload_over_ = nullptr;       ///< overload.slots_over_budget
  telemetry::Counter* tel_overload_escal_ = nullptr;      ///< overload.escalations
  telemetry::Counter* tel_overload_recov_ = nullptr;      ///< overload.recoveries
  telemetry::Counter* tel_overload_skipped_ = nullptr;    ///< overload.updates_skipped
  telemetry::Counter* tel_overload_midshed_ = nullptr;    ///< overload.mid_slot_sheds
  telemetry::Counter* tel_audit_checks_ = nullptr;        ///< audit.checks
  telemetry::Counter* tel_audit_violations_ = nullptr;    ///< audit.violations
  telemetry::Gauge* tel_audit_quarantined_ = nullptr;     ///< audit.quarantined
  /// Controller counters at the last telemetry publish (delta base).
  OverloadCounters tel_prev_{};
};

}  // namespace lfsc
