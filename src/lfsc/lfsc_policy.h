// LFSC — the paper's online learning framework (Alg. 1), combining:
//   * Calculating  (Alg. 2): Exp3.M capped selection probabilities over
//     the tasks in each SCN's coverage, with weights kept per context
//     hypercube;
//   * GreedySelect (Alg. 4): collaborative cross-SCN assignment on the
//     probability-weighted bipartite graph;
//   * Updating     (Alg. 3): IPW estimates, exponential weight update
//     with Lagrangian constraint terms, and dual ascent on the
//     multipliers.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "bandit/exp3m.h"
#include "bandit/partition.h"
#include "common/rng.h"
#include "lfsc/config.h"
#include "lfsc/lagrange.h"
#include "sim/policy.h"

namespace lfsc {

class LfscPolicy final : public Policy {
 public:
  LfscPolicy(const NetworkConfig& net, LfscConfig config = {});

  std::string_view name() const noexcept override { return "LFSC"; }
  Assignment select(const SlotInfo& info) override;
  void observe(const SlotInfo& info, const Assignment& assignment,
               const SlotFeedback& feedback) override;
  void reset() override;

  // --- introspection (tests, diagnostics, ablation benches) ---

  const LfscConfig& config() const noexcept { return config_; }
  const HypercubePartition& partition() const noexcept { return partition_; }

  /// Hypercube weights of SCN `m` (normalized so max == 1 after updates).
  const std::vector<double>& weights(int scn) const {
    return scn_state_[static_cast<std::size_t>(scn)].weights;
  }
  double lambda_qos(int scn) const {
    return scn_state_[static_cast<std::size_t>(scn)].multipliers.qos();
  }
  double lambda_resource(int scn) const {
    return scn_state_[static_cast<std::size_t>(scn)].multipliers.resource();
  }

  /// Selection probabilities computed by the last select() call for SCN
  /// `m`, aligned with coverage[m]. Empty before the first slot.
  const std::vector<double>& last_probabilities(int scn) const {
    return scn_state_[static_cast<std::size_t>(scn)].last_probs;
  }

  /// Effective exploration rate in use.
  double gamma() const noexcept { return gamma_; }

  // --- persistence (warm-starting a deployment) ---

  /// Writes the learned state (hypercube weights and Lagrange
  /// multipliers per SCN) as a versioned text blob.
  void save(std::ostream& out) const;

  /// Restores state written by save(). Throws std::runtime_error on a
  /// malformed blob or a shape mismatch (different SCN count or
  /// partition).
  void load(std::istream& in);

 private:
  struct ScnState {
    std::vector<double> weights;       // per hypercube
    LagrangeMultipliers multipliers;
    std::vector<double> last_probs;    // aligned with coverage[m]
    std::vector<bool> last_capped;     // aligned with coverage[m]
    std::vector<std::size_t> last_cells;  // hypercube of each covered task

    ScnState(std::size_t cells, double eta_lambda, double delta,
             double lambda_max)
        : weights(cells, 1.0),
          multipliers(eta_lambda, delta, lambda_max) {}
  };

  /// Alg. 2 for one SCN: fills last_probs/last_capped/last_cells.
  void calculate_probabilities(std::size_t m, const SlotInfo& info);

  /// Alg. 3 weight + multiplier update for one SCN.
  void update_scn(std::size_t m, const SlotInfo& info,
                  const std::vector<int>& selected_locals,
                  const std::vector<TaskFeedback>& feedback);

  NetworkConfig net_;
  LfscConfig config_;
  HypercubePartition partition_;
  double gamma_;
  double eta_lambda_;
  double delta_;
  std::vector<ScnState> scn_state_;
  RngStream rng_;
  int last_slot_t_ = -1;
};

}  // namespace lfsc
