// LFSC — the paper's online learning framework (Alg. 1), combining:
//   * Calculating  (Alg. 2): Exp3.M capped selection probabilities over
//     the tasks in each SCN's coverage, with weights kept per context
//     hypercube;
//   * GreedySelect (Alg. 4): collaborative cross-SCN assignment on the
//     probability-weighted bipartite graph;
//   * Updating     (Alg. 3): IPW estimates, exponential weight update
//     with Lagrangian constraint terms, and dual ascent on the
//     multipliers.
//
// Performance contract (see DESIGN.md "Performance" and §12): the
// per-slot path select() -> observe() performs no heap allocation in
// steady state beyond the returned Assignment; per-hypercube state is
// kept in structure-of-arrays tables (one cache-line-aligned row per
// SCN) so the dense per-cell passes run through the runtime-dispatched
// SIMD kernels in src/common/simd.h; the Alg. 2 epsilon fixed point is
// solved over (weight, multiplicity) cell groups instead of per arm;
// and every SCN draws from its own stream-keyed RngStream, so the
// per-SCN phases can run sharded on a thread pool
// (LfscConfig::parallel_scns / LfscConfig::shards) with bit-identical
// results for any worker or shard count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "bandit/exp3m.h"
#include "bandit/partition.h"
#include "common/aligned.h"
#include "common/rng.h"
#include "lfsc/config.h"
#include "lfsc/lagrange.h"
#include "lfsc/overload.h"
#include "sim/policy.h"
#include "solver/greedy_assignment.h"
#include "solver/improve.h"
#include "telemetry/telemetry.h"

namespace lfsc {

class LfscPolicy final : public Policy {
 public:
  LfscPolicy(const NetworkConfig& net, LfscConfig config = {});

  std::string_view name() const noexcept override { return "LFSC"; }
  Assignment select(const SlotInfo& info) override;
  void select(const SlotInfo& info, Assignment& out) override;
  void observe(const SlotInfo& info, const Assignment& assignment,
               const SlotFeedback& feedback) override;
  void reset() override;

  // --- degraded feedback (DESIGN.md §9) ---

  /// Accepts delayed bandit feedback up to `max_delay` slots late. At
  /// observe(t) the policy freezes the slot's update inputs (eta_t, the
  /// multipliers, each selected task's probability and its hypercube's
  /// IPW divisor); a late batch then composes exactly with the on-time
  /// update, because exponential weight updates with frozen inputs are
  /// multiplicative across partial batches. Lagrange dual ascent runs
  /// once per slot from the on-time arrivals only (documented deviation
  /// from Alg. 3 — late constraint totals would re-run the projection).
  bool enable_delayed_feedback(int max_delay) override;
  void observe_delayed(int origin_t, const SlotFeedback& feedback) override;

  // --- overload protection (DESIGN.md §11) ---

  /// Installs a per-slot deadline budget, merging it into
  /// config().overload and rebuilding the degradation controller. Must
  /// precede the first slot. Under a budget the policy walks the staged
  /// ladder (full -> explore-capped -> greedy-only -> shed) instead of
  /// overrunning; with no budget and no forced rung the controller is
  /// inert (zero clock reads, bit-identical output).
  bool set_slot_budget(std::uint32_t budget_us) override;

  /// Live budget reconfiguration between slots (serve layer, DESIGN.md
  /// §14). Unlike set_slot_budget — which rebuilds the controller and is
  /// therefore restricted to before the first slot — this swaps the
  /// deadline in place, preserving the ladder's monotonic counters (the
  /// delta-publishing telemetry depends on them never going backwards).
  /// 0 removes the budget: the ladder returns to kFull with the
  /// escalations − recoveries == rung invariant intact. The
  /// explore-capped probability cache is invalidated on every change.
  /// Throws std::logic_error when the config forces a rung.
  void reconfigure_slot_budget(std::uint32_t budget_us);

  // --- solver zoo / anytime improver (DESIGN.md §15) ---

  /// Live assignment-solver selection from the next slot on (serve
  /// layer "reconfig solver=<name>"). Every greedy kind is
  /// bit-identical to kAuto; the exact kinds change the assignment
  /// (and the learning trajectory downstream of it).
  void set_solver(SolverKind kind) noexcept { config_.solver = kind; }
  SolverKind solver() const noexcept { return config_.solver; }

  /// Live toggle for the shift-swap improver from the next slot on
  /// (serve layer "reconfig improve=0|1"). The improver only ever runs
  /// on budgeted slots below the greedy-only rung; toggling it with no
  /// budget set changes nothing.
  void set_improve(bool on) noexcept { config_.improve = on; }
  bool improve() const noexcept { return config_.improve; }

  /// Live reconfiguration of the constraint thresholds α (QoS, per (1a))
  /// and β (resource, per (1b)) used by the Lagrangian multiplier
  /// updates from the next slot on. Validates like NetworkConfig
  /// (α ≥ 0, β > 0, finite) and throws std::invalid_argument without
  /// touching state. Note the world keeps generating tasks under its own
  /// NetworkConfig; only the learner's dual ascent moves.
  void set_constraint_thresholds(double qos_alpha, double resource_beta);

  /// The ladder/deadline state machine (rung, overload.* counters).
  const OverloadController& overload() const noexcept { return overload_; }

  /// Runs the invariant auditor (src/lfsc/audit) over every
  /// non-quarantined SCN now: weight-table finiteness/positivity and
  /// scale bound, Alg. 2 probability range and Σp budget, multiplier
  /// projection bounds. A violating SCN is quarantined to the
  /// greedy-only rung (it keeps serving slots, stops learning) and
  /// counted under audit.*. Returns the number of new violations.
  /// observe() calls this on the configured audit_stride.
  int audit_now();

  bool quarantined(int scn) const {
    return quarantined_[static_cast<std::size_t>(scn)] != 0;
  }
  std::uint64_t audit_checks() const noexcept { return audit_checks_; }
  std::uint64_t audit_violations() const noexcept { return audit_violations_; }
  /// One-line description of the most recent violation ("" when clean).
  const std::string& last_audit_detail() const noexcept {
    return last_audit_detail_;
  }

  /// Test/fault-injection hook: overwrites one hypercube weight
  /// directly, bypassing every guard the update path has. The auditor
  /// exists to catch exactly this kind of corruption.
  void debug_set_weight(int scn, std::size_t cell, double value) {
    weights_[static_cast<std::size_t>(scn) * stride_ + cell] = value;
  }

  // --- crash-safe checkpointing (DESIGN.md §9) ---

  /// Unlike save()/load() (a portable, max-normalized warm-start blob),
  /// the checkpoint is an exact binary image — raw-scaled weights,
  /// per-SCN RNG stream states and the delayed-feedback ring — so a
  /// resumed run continues bit-identically for any parallel_scns.
  bool supports_checkpoint() const noexcept override { return true; }
  void save_checkpoint(std::string& out) const override;
  void load_checkpoint(std::string_view blob) override;

  // --- introspection (tests, diagnostics, ablation benches) ---

  const LfscConfig& config() const noexcept { return config_; }
  const HypercubePartition& partition() const noexcept { return partition_; }

  /// Hypercube weights of SCN `m`, normalized so max == 1. Weights are
  /// kept raw-scaled in a shared SoA table (lazy renormalization); this
  /// accessor flushes the pending renormalization, then copies the
  /// SCN's row out of the table.
  std::vector<double> weights(int scn);

  double lambda_qos(int scn) const {
    return scn_state_[static_cast<std::size_t>(scn)].multipliers.qos();
  }
  double lambda_resource(int scn) const {
    return scn_state_[static_cast<std::size_t>(scn)].multipliers.resource();
  }

  /// Selection probabilities computed by the last select() call for SCN
  /// `m`, aligned with coverage[m]. Empty before the first slot.
  const std::vector<double>& last_probabilities(int scn) const {
    return scn_state_[static_cast<std::size_t>(scn)].last.p;
  }

  /// Full Alg. 2 output of the last select() for SCN `m` — probabilities
  /// plus the capped set S', |S'| and ε_t. Used by the differential
  /// harness (tools/lfsc_diff_fuzz) to compare the optimized solve
  /// against the reference transliteration slot by slot.
  const CappedProbabilities& last_result(int scn) const {
    return scn_state_[static_cast<std::size_t>(scn)].last;
  }

  /// Effective exploration rate in use.
  double gamma() const noexcept { return gamma_; }

  /// Number of contiguous SCN shards the parallel phases dispatch
  /// (LfscConfig::shards resolved against the pool; 1 when serial).
  std::size_t num_shards() const noexcept { return num_shards_; }

  /// The policy's telemetry registry (DESIGN.md §8): per-subroutine
  /// timers, Lagrange-multiplier gauges, per-SCN acceptance counters and
  /// cap-set / hypercube-occupancy histograms. Per-SCN metrics are
  /// sharded with stream = SCN index and the shard phases record under
  /// lfsc.shard.busy with stream = shard index, so the parallel_scns
  /// phases record race-free and aggregates merge deterministically.
  /// The registry is live even under LFSC_TELEMETRY=OFF (every read
  /// returns zero).
  telemetry::Registry& telemetry() noexcept { return telemetry_; }
  const telemetry::Registry& telemetry() const noexcept { return telemetry_; }

  // --- persistence (warm-starting a deployment) ---

  /// Writes the learned state (hypercube weights and Lagrange
  /// multipliers per SCN) as a versioned text blob. Weights are emitted
  /// max-normalized, so the blob is independent of the internal raw
  /// scale (and byte-identical across serial/parallel slot paths).
  void save(std::ostream& out) const;

  /// Restores state written by save(). Throws std::runtime_error on a
  /// malformed blob or a shape mismatch (different SCN count or
  /// partition).
  void load(std::istream& in);

 private:
  struct ScnState {
    LagrangeMultipliers multipliers;
    CappedProbabilities last;  ///< p/capped aligned with coverage[m]
    std::vector<std::uint32_t> last_cells;  ///< hypercube of each covered task
    RngStream rng;  ///< stream-keyed (seed, kScnStreamBase + m)
    /// Running upper bound on max(weights row); weights are only
    /// rescaled to max == 1 when this drifts outside the representable
    /// band (lazy renormalization, O(cells) but rare) or when an exact
    /// normalized view is needed (weights() accessor, save()).
    double weight_scale = 1.0;
    /// 1 when `last` came from a full Exp3.M solve (its Σp budget is an
    /// invariant the auditor may check); 0 after a degraded pass.
    std::uint8_t last_solve_exact = 0;

    // Per-slot scratch: reused across slots, no steady-state allocation.
    std::vector<double> task_weights;  ///< degraded-path weight lookups
    std::vector<std::uint32_t> group_cells;   ///< present cells, slot order
    std::vector<double> group_values;         ///< group weight per cell
    std::vector<std::uint32_t> group_counts;  ///< group multiplicity
    Exp3mGroupedScratch grouped_scratch;      ///< Alg. 2 grouped solve
    std::vector<float> es_u;     ///< batched E-S uniform draws
    std::vector<float> es_keys;  ///< batched E-S edge keys
    std::vector<std::uint32_t> touched_cells;  ///< first-touch order (update)
    std::vector<std::uint32_t> late_cells;  ///< per-batch cells (delayed apply)
    std::vector<double> late_payoff;        ///< per-batch payoff sums

    ScnState(double eta_lambda, double delta, double lambda_max,
             RngStream stream)
        : multipliers(eta_lambda, delta, lambda_max), rng(stream) {}
  };

  // Frozen per-slot update inputs for late feedback (enable_delayed_
  // feedback). One entry per selected task in an *uncapped* hypercube —
  // capped cubes skip the weight update entirely, so their late
  // arrivals have nothing to apply.
  struct PendingEntry {
    std::int32_t local = 0;   ///< local index within coverage[m]
    std::uint32_t cell = 0;   ///< the task's hypercube
    double p = 0.0;           ///< selection probability at decision time
    double inv_n = 0.0;       ///< 1 / (cell's IPW divisor that slot)
  };
  struct PendingScn {
    double eta_t = 0.0;
    double lambda_qos = 0.0;
    double lambda_res = 0.0;
    std::vector<PendingEntry> entries;
  };
  struct PendingSlot {
    int t = -1;  ///< origin slot, -1 = vacant
    std::vector<PendingScn> per_scn;
  };

  // --- SoA row accessors (DESIGN.md §12) ---
  // Every per-hypercube table stores one row per SCN at a padded,
  // cache-line-aligned stride; row m of a double table starts at
  // m * stride_. Rows are disjoint, so the sharded phases write
  // race-free.
  double* weight_row(std::size_t m) noexcept {
    return weights_.data() + m * stride_;
  }
  const double* weight_row(std::size_t m) const noexcept {
    return weights_.data() + m * stride_;
  }
  double* cell_prob_row(std::size_t m) noexcept {
    return cell_prob_.data() + m * stride_;
  }
  double* cell_p_row(std::size_t m) noexcept {
    return cell_p_.data() + m * stride_;
  }
  double* solve_row(std::size_t m) noexcept {
    return solve_values_.data() + m * stride_;
  }
  std::uint32_t* count_row(std::size_t m) noexcept {
    return cell_count_.data() + m * stride32_;
  }
  double* ipw_g_row(std::size_t m) noexcept {
    return ipw_g_.data() + m * stride_;
  }
  double* ipw_v_row(std::size_t m) noexcept {
    return ipw_v_.data() + m * stride_;
  }
  double* ipw_q_row(std::size_t m) noexcept {
    return ipw_q_.data() + m * stride_;
  }
  std::uint32_t* ipw_n_row(std::size_t m) noexcept {
    return ipw_n_.data() + m * stride32_;
  }
  double* payoff_row(std::size_t m) noexcept {
    return payoff_.data() + m * stride_;
  }
  double* expo_row(std::size_t m) noexcept {
    return expo_.data() + m * stride_;
  }
  double* expw_row(std::size_t m) noexcept {
    return expw_.data() + m * stride_;
  }
  unsigned char* cube_capped_row(std::size_t m) noexcept {
    return cube_capped_.data() + m * stride8_;
  }

  /// Zeroes SCN `m`'s per-slot IPW and capped-cube rows (exception
  /// cleanup and end-of-update reset).
  void reset_slot_rows(std::size_t m) noexcept;

  /// Alg. 2 for one SCN: fills last (probabilities/capped) and
  /// last_cells. The epsilon fixed point runs over (weight,
  /// multiplicity) cell groups (exp3m_grouped) and the per-arm
  /// expansion through the SIMD kernels; the capped set is marked with
  /// the same arm-order countdown as the arm-level reference, so the
  /// output matches exp3m_probabilities (flags and |S'| exactly,
  /// values to rounding). Touches only SCN-local state — safe to run
  /// per-SCN in parallel.
  void calculate_probabilities(std::size_t m, const SlotInfo& info);

  /// Degraded Alg. 2 for the explore-capped rung (DESIGN.md §11): a
  /// single O(K) closed-form pass — cells untouched since their last
  /// exact solve reuse the cached probability, the rest get the Exp3.M
  /// marginal with capped exploration, clipped per arm instead of
  /// solving the ε_t fixed point. Draws no RNG.
  void calculate_probabilities_degraded(std::size_t m, const SlotInfo& info);

  /// Alg. 3 weight + multiplier update for one SCN from the feedback
  /// that arrived on time (all of it when no faults are injected).
  /// `selected` is the SCN's slice of the assignment, needed to freeze
  /// pending entries for late arrivals. Touches only SCN-local state.
  void update_scn(std::size_t m, const SlotInfo& info,
                  const std::vector<int>& selected,
                  const std::vector<TaskFeedback>& feedback);

  /// Constraint-only Alg. 3 for slots/SCNs whose weight update is off
  /// (greedy-only rung, shed slots, quarantined SCNs, deadline-skipped
  /// updates): sanity-filters the feedback, steps the dual ascent from
  /// the realized sums, and clears the slot's frozen pending entries so
  /// late arrivals have nothing to apply.
  void update_scn_multiplier_only(std::size_t m, const SlotInfo& info,
                                  const std::vector<TaskFeedback>& feedback);

  /// The rung SCN `m` runs at this slot: the slot rung, floored to
  /// greedy-only for quarantined SCNs.
  DegradeRung effective_rung(std::size_t m) const noexcept {
    DegradeRung r = slot_rung_;
    if (quarantine_count_ > 0 && quarantined_[m] != 0 &&
        r < DegradeRung::kGreedyOnly) {
      r = DegradeRung::kGreedyOnly;
    }
    return r;
  }

  /// Registers the overload.*/audit.* telemetry handles (idempotent);
  /// called once the controller or the auditor becomes active.
  void ensure_overload_telemetry();

  /// Publishes the controller's counters/rung to telemetry as deltas
  /// against the last published snapshot (exact across checkpoints).
  void publish_overload_telemetry();

  /// Applies one late batch for SCN `m` against the frozen slot state.
  void apply_delayed_scn(std::size_t m, const PendingScn& pend,
                         const std::vector<TaskFeedback>& arrived);

  /// Rescales SCN `m`'s weight row so max == 1 (with the 1e-12
  /// positivity floor) and resets weight_scale. O(cells); called lazily.
  void renormalize(std::size_t m);

  /// Runs fn(m) for every SCN — serially, or as num_shards_ contiguous
  /// SCN ranges on the configured thread pool when
  /// config_.parallel_scns is set. Each shard runs under its own
  /// lfsc.shard.busy telemetry stream and, while a slot budget is being
  /// probed (probe_active_), checks the deadline once at shard start,
  /// latching shard_shed_ for the remaining shards.
  template <typename Fn>
  void for_each_scn(const Fn& fn);

  NetworkConfig net_;
  LfscConfig config_;
  HypercubePartition partition_;
  double gamma_;
  double eta_lambda_;
  double delta_;
  std::vector<ScnState> scn_state_;
  int last_slot_t_ = -1;

  // --- SoA hypercube tables (DESIGN.md §12) ---
  std::size_t cells_ = 0;     ///< partition_.cell_count()
  std::size_t stride_ = 0;    ///< double-row stride, 64B-aligned rows
  std::size_t stride32_ = 0;  ///< uint32-row stride
  std::size_t stride8_ = 0;   ///< byte-row stride
  AlignedVector<double> weights_;    ///< raw-scaled weights, row per SCN
  AlignedVector<double> cell_prob_;  ///< explore-capped probability cache
  AlignedVector<double> cell_p_;     ///< per-slot per-cell marginal scratch
  AlignedVector<double> solve_values_;  ///< numeric-guard scaled weights
  AlignedVector<double> ipw_g_;      ///< per-slot IPW payoff sums
  AlignedVector<double> ipw_v_;      ///< per-slot IPW QoS sums
  AlignedVector<double> ipw_q_;      ///< per-slot IPW resource sums
  AlignedVector<double> payoff_;     ///< update-pass payoff scratch
  AlignedVector<double> expo_;       ///< update-pass exponent scratch
  AlignedVector<double> expw_;       ///< update-pass exp() scratch
  AlignedVector<std::uint32_t> ipw_n_;       ///< per-slot presence counts
  AlignedVector<std::uint32_t> cell_count_;  ///< per-slot group histogram
  AlignedVector<unsigned char> cube_capped_;  ///< per-slot capped cubes

  // --- sharded dispatch (DESIGN.md §12) ---
  std::size_t num_shards_ = 1;
  std::vector<std::size_t> shard_start_;  ///< num_shards_ + 1 boundaries
  /// Latched by a shard whose deadline probe finds the budget blown;
  /// later shards then skip their Alg. 2 work (the slot is about to be
  /// shed by the counting mid-slot check). Reset every slot. Relaxed
  /// ordering: the flag is advisory, the authoritative check is
  /// OverloadController::should_shed_mid_slot().
  std::atomic<bool> shard_shed_{false};
  /// True only during the select() calc phase of a budgeted slot.
  bool probe_active_ = false;

  // --- overload protection (DESIGN.md §11) ---
  OverloadController overload_;
  /// Rung chosen by begin_slot() for the slot currently in flight;
  /// kFull whenever the controller is inert. May drop to kShed mid-slot
  /// when the budget is blown between Alg. 2 and Alg. 4.
  DegradeRung slot_rung_ = DegradeRung::kFull;
  /// True while the controller is active: the exact-solve path then
  /// maintains the per-cell probability cache the explore-capped rung
  /// reuses. Kept false when inert so the hot loops skip the cache
  /// writes entirely.
  bool cache_active_ = false;
  std::vector<std::uint8_t> quarantined_;  ///< per SCN, set by the auditor
  int quarantine_count_ = 0;
  std::uint64_t audit_checks_ = 0;
  std::uint64_t audit_violations_ = 0;
  std::string last_audit_detail_;

  /// Delayed-feedback ring, indexed origin_t % (max_delay_ + 1); empty
  /// until enable_delayed_feedback(). A slot's frozen state lives until
  /// the ring wraps, which by the harness contract is after its delivery
  /// window closed.
  std::vector<PendingSlot> pending_;
  int max_delay_ = 0;

  /// Maps every task of the current slot to its hypercube, computed once
  /// per slot: coverage overlap means per-SCN indexing would redo the
  /// partition lookup coverage_degree times per task.
  std::vector<std::size_t> task_cells_;

  // Slot-level scratch for the collaborative path. Edges are produced
  // already grouped by SCN (bucket m covers
  // [bucket_start_[m], bucket_start_[m+1])) and packed into single
  // uint64 keys (pack_greedy_entry), so greedy_select_packed skips the
  // validation and counting-sort passes of the generic API and its
  // heaps compare/move 8 bytes per edge.
  std::vector<int> bucket_start_;          ///< per-SCN ranges into entries
  std::vector<std::uint64_t> entries_;     ///< packed bucketed edge buffer
  /// Unpacked edge buffer for slots whose task count exceeds the packed
  /// 16-bit task field; same keys and order, wider fields.
  std::vector<GreedyBucketEntry> wide_entries_;
  GreedySelectScratch greedy_scratch_;
  /// Flat edge view of the staged buckets, built before the greedy
  /// dispatch on slots that need it (the exact solver kinds, and any
  /// slot the shift-swap improver will run on — the packed/bucketed
  /// greedy paths consume their staged entries in place, so the edges
  /// must be snapshotted first). Never touched on the default path.
  std::vector<Edge> improve_edges_;
  ShiftSwapScratch improve_scratch_;

  // Telemetry (DESIGN.md §8). Handles are registered once in the
  // constructor; under LFSC_TELEMETRY=OFF every call through them is an
  // inline no-op. Per-SCN metrics use stream = m.
  telemetry::Registry telemetry_;
  telemetry::Timer* tel_select_;       ///< lfsc.select (whole Alg. 1 decision)
  telemetry::Timer* tel_observe_;      ///< lfsc.observe (whole Alg. 3 phase)
  telemetry::Timer* tel_calculating_;  ///< lfsc.alg2.calculating, phase/slot
  telemetry::Timer* tel_greedy_;       ///< lfsc.alg4.greedy_select
  telemetry::Timer* tel_improve_;      ///< lfsc.alg4.improve (budgeted slots)
  telemetry::Counter* tel_improve_moves_;  ///< lfsc.improve.moves accepted
  telemetry::Timer* tel_updating_;     ///< lfsc.alg3.updating, phase/slot
  telemetry::Timer* tel_shard_busy_;   ///< lfsc.shard.busy, stream = shard
  telemetry::Counter* tel_slots_;      ///< lfsc.slots
  telemetry::Counter* tel_accepted_;   ///< lfsc.scn.accepted, per SCN
  telemetry::Counter* tel_rejected_;   ///< lfsc.feedback.rejected, per SCN
  telemetry::Gauge* tel_lambda_qos_;   ///< lfsc.lagrange.qos = λ_m (1c)
  telemetry::Gauge* tel_lambda_res_;   ///< lfsc.lagrange.resource = λ'_m (1d)
  telemetry::Histogram* tel_capset_;   ///< lfsc.exp3m.capset_size, |S'| per SCN-slot
  telemetry::Histogram* tel_occupancy_;  ///< lfsc.cells.touched per SCN-slot

  // Overload/audit telemetry (registered lazily by
  // ensure_overload_telemetry; null while both subsystems are inert).
  telemetry::Gauge* tel_overload_rung_ = nullptr;  ///< overload.rung
  telemetry::Counter* tel_overload_degraded_ = nullptr;   ///< overload.slots_degraded
  telemetry::Counter* tel_overload_shed_ = nullptr;       ///< overload.slots_shed
  telemetry::Counter* tel_overload_over_ = nullptr;       ///< overload.slots_over_budget
  telemetry::Counter* tel_overload_escal_ = nullptr;      ///< overload.escalations
  telemetry::Counter* tel_overload_recov_ = nullptr;      ///< overload.recoveries
  telemetry::Counter* tel_overload_skipped_ = nullptr;    ///< overload.updates_skipped
  telemetry::Counter* tel_overload_midshed_ = nullptr;    ///< overload.mid_slot_sheds
  telemetry::Counter* tel_audit_checks_ = nullptr;        ///< audit.checks
  telemetry::Counter* tel_audit_violations_ = nullptr;    ///< audit.violations
  telemetry::Gauge* tel_audit_quarantined_ = nullptr;     ///< audit.quarantined
  /// Controller counters at the last telemetry publish (delta base).
  OverloadCounters tel_prev_{};
};

}  // namespace lfsc
