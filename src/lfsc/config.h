// Tunables of the LFSC algorithm (Alg. 1 initialization).
//
// Where the scanned paper's constant definitions are unreadable, defaults
// follow the algorithms LFSC builds on (Exp3.M for gamma/eta; Mahdavi et
// al.-style regularized dual ascent for delta). Every constant is
// overridable and bench/ablation_lfsc_params sweeps the sensitive ones.
//
// Each field below records: the paper symbol it implements, its unit,
// the valid range, and the default (with the auto-selection formula when
// 0 means "derive it").
#pragma once

#include <cstddef>
#include <cstdint>

#include "lfsc/overload.h"
#include "sim/context.h"
#include "solver/assignment_solver.h"

namespace lfsc {

/// Per-SCN RNG stream ids: SCN m of a policy draws from the stream
/// (seed, kScnStreamBase + m). Shared between LfscPolicy and the naive
/// reference transliteration (src/reference) so a differential run can
/// align both policies' exploration draws stream-for-stream.
inline constexpr std::uint64_t kScnStreamBase = 0x1F5C0000ULL;

struct LfscConfig {
  /// Paper symbol: D_b, the context dimensionality (Sec. 3.1: input
  /// size, output size, resource type). Unit: dimensions. Valid: >= 1
  /// and equal to the simulator's context width. Default: kContextDims
  /// (= 3, the paper's model).
  std::size_t context_dims = kContextDims;

  /// Paper symbol: h_T, partition granularity per dimension; the context
  /// space [0,1]^D splits into h_T^D hypercubes (Alg. 1 line 2). Unit:
  /// parts per dimension. Valid: >= 1 (1 merges all contexts; see the E8
  /// ablation). Default: 3 — the paper's "three categories" per
  /// dimension, matching the ground-truth grid.
  std::size_t parts_per_dim = 3;

  /// Paper symbol: γ, the Exp3.M exploration mixture (Alg. 2). Unit:
  /// probability mass. Valid: [0, 1]; 0 selects the Exp3.M formula
  /// γ = min(1, sqrt(K ln(K/c) / ((e−1) c T))) using `horizon` and
  /// `expected_tasks_per_scn`. Default: 0 (auto).
  double gamma = 0.0;

  /// Scale on the learning rate η of the exponential weight update
  /// (Alg. 3 line 8). The per-slot exponent uses
  /// η_t = eta_scale · c · γ / |D_{m,t}| (the Exp3.M rate adapted to the
  /// varying arm count). Unit: dimensionless multiplier. Valid: > 0.
  /// Default: 1.0 (the textbook rate).
  double eta_scale = 1.0;

  /// Paper symbols: the step size of the projected-gradient updates of
  /// λ_m (QoS, constraint (1c)) and λ'_m (resource, constraint (1d)) in
  /// Alg. 3. Unit: multiplier units per unit of constraint slack.
  /// Valid: >= 0; 0 selects 10/sqrt(horizon) (empirically stable).
  /// Default: 0 (auto).
  double eta_lambda = 0.0;

  /// Paper symbol: δ, the dual regularization; each update decays the
  /// multipliers by (1 − η·δ) so they settle at λ ≈ gap/δ instead of
  /// drifting (DESIGN.md §6 "Primal-dual equilibrium"). Unit:
  /// dimensionless. Valid: >= 0; 0 selects 1/sqrt(horizon).
  /// Default: 0 (auto).
  double delta = 0.0;

  /// Projection upper bound on each Lagrange multiplier. Unit: same as
  /// λ (dimensionless weight on v̂/q̂ in the compound update). Valid:
  /// > 0. Default: 5.0. The exported telemetry gauges
  /// `lfsc.lagrange.{qos,resource}[m]` show how close the duals run to
  /// this cap.
  double lambda_max = 5.0;

  /// Paper symbol: T, the horizon the auto formulas (γ, η_λ, δ) tune
  /// for. Unit: slots. Valid: >= 1. Default: 10000 (Sec. 5). Does NOT
  /// limit the run length — running past T merely leaves the constants
  /// tuned for a shorter horizon.
  std::size_t horizon = 10000;

  /// Estimate of K_m = max |D_{m,t}| (tasks an SCN can see per slot),
  /// used by the auto-γ formula as the arm count. Unit: tasks. Valid:
  /// >= 1. Default: 68 — E[U[35,100]] at the paper's coverage density.
  std::size_t expected_tasks_per_scn = 68;

  /// Ablation switch: false removes the Lagrangian terms entirely
  /// (constraint-blind Exp3.M — isolates the constraint machinery; E8
  /// shows violations roughly double). Default: true (the paper's
  /// algorithm).
  bool use_lagrangian = true;

  /// Ablation switch: false replaces the cross-SCN greedy coordination
  /// (Alg. 4) with independent per-SCN DepRound sampling — tasks may be
  /// offloaded to several SCNs at once, violating (1b). Default: true.
  bool coordinate_scns = true;

  /// When true, edge weights are the probabilities themselves (the
  /// paper's literal w(m,i) ∝ p), making selection deterministic given p
  /// and starving exploration. Default false: Efraimidis-Spirakis keys
  /// u^(1/p) randomize selection so realized inclusion tracks p.
  bool deterministic_edges = false;

  /// Run the per-SCN slot phases (Alg. 2 probability calculation and
  /// Alg. 3 weight updates) across SCNs on a thread pool. Results are
  /// bit-identical to the serial path for any worker count: every SCN
  /// owns its state, its own stream-keyed RngStream, and its own
  /// telemetry stream (DESIGN.md §8). Default: false — the serial path
  /// wins below a few dozen SCNs.
  bool parallel_scns = false;

  /// Pool used when `parallel_scns` is set; nullptr selects the
  /// process-wide default_thread_pool(). Not owned.
  class ThreadPool* pool = nullptr;

  /// Shard count for the parallel per-SCN phases: SCNs are split into
  /// this many contiguous ranges, each dispatched as one pool task and
  /// timed under its own `lfsc.shard.busy` telemetry stream. Results
  /// stay bit-identical for any shard or worker count (per-SCN state,
  /// RNG streams and telemetry streams are disjoint; shard aggregates
  /// merge in shard order). Valid: >= 0; 0 picks 4 blocks per pool
  /// worker. Ignored (one shard) when `parallel_scns` is false.
  int shards = 0;

  /// Root seed for every stream-keyed RNG the policy owns. Valid: any.
  /// Default: 1234. Two policies with equal config and seed replay the
  /// same trajectory bit-for-bit.
  std::uint64_t seed = 1234;

  /// Assignment solver for the Alg. 4 phase (DESIGN.md §15): which
  /// registered AssignmentSolver the collaborative select dispatches
  /// to. Valid: any SolverKind. Default: kAuto — the shape-driven
  /// radix/packed/wide cutover; every greedy kind produces the
  /// identical assignment, the exact kinds (flow, bnb) trade wall time
  /// for per-slot optimality (benches, small deployments).
  SolverKind solver = SolverKind::kAuto;

  /// Anytime shift-swap improver (DESIGN.md §15): when true and a slot
  /// budget is live, leftover budget after the greedy refines the
  /// assignment with strictly-improving shift/swap/insert moves. With
  /// no budget — or on the greedy-only and shed rungs — the improver
  /// never runs and the slot path stays bit-identical to plain greedy.
  /// Default: false.
  bool improve = false;

  /// Fraction of slot_budget_us at which the improver's deadline fires,
  /// leaving the remainder as headroom for the observe() phase. Unit:
  /// fraction of the slot budget. Valid: (0, 1]. Default: 0.5.
  double improve_budget_fraction = 0.5;

  /// Overload protection (DESIGN.md §11): per-slot deadline budget and
  /// staged degradation ladder. Default-constructed = disabled — the
  /// controller then reads no clock and the slot path is bit-identical
  /// to a build without it.
  OverloadConfig overload{};

  /// Invariant-audit stride (DESIGN.md §11): every `audit_stride` slots
  /// observe() runs the src/lfsc/audit checks over every non-quarantined
  /// SCN; a violation quarantines that SCN to the greedy-only rung.
  /// Unit: slots. Valid: >= 0; 0 disables the strided audit
  /// (LfscPolicy::audit_now() remains callable on demand).
  std::size_t audit_stride = 0;
};

}  // namespace lfsc
