// Tunables of the LFSC algorithm (Alg. 1 initialization).
//
// Where the scanned paper's constant definitions are unreadable, defaults
// follow the algorithms LFSC builds on (Exp3.M for gamma/eta; Mahdavi et
// al.-style regularized dual ascent for delta). Every constant is
// overridable and bench/ablation_lfsc_params sweeps the sensitive ones.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/context.h"

namespace lfsc {

struct LfscConfig {
  /// Number of context dimensions D_b.
  std::size_t context_dims = kContextDims;

  /// h_T: parts per dimension; the context space splits into h_T^D
  /// hypercubes. Paper default: 3 categories per dimension.
  std::size_t parts_per_dim = 3;

  /// Exploration rate gamma in (0,1]. 0 selects the Exp3.M formula
  /// using `horizon` and `expected_tasks_per_scn`.
  double gamma = 0.0;

  /// Learning-rate scale for the exponential weight update. The per-slot
  /// exponent uses eta_t = eta_scale * c * gamma / |D_{m,t}| (the Exp3.M
  /// rate adapted to the varying arm count); eta_scale tunes it.
  double eta_scale = 1.0;

  /// Learning rate for the Lagrange multiplier (dual) updates.
  /// 0 selects 1/sqrt(horizon) * 10 (empirically stable).
  double eta_lambda = 0.0;

  /// Regularization delta on the multipliers ((1 - eta*delta) decay).
  /// 0 selects 1/sqrt(horizon).
  double delta = 0.0;

  /// Hard cap on each multiplier (projection upper bound).
  double lambda_max = 5.0;

  /// Horizon T used by the auto formulas. Does not limit the run length.
  std::size_t horizon = 10000;

  /// Estimate of K_m (max tasks per SCN coverage) for the auto gamma.
  std::size_t expected_tasks_per_scn = 68;

  /// Ablation switch: false removes the Lagrangian terms entirely
  /// (constraint-blind Exp3.M — isolates the constraint machinery).
  bool use_lagrangian = true;

  /// Ablation switch: false replaces the cross-SCN greedy coordination
  /// with independent per-SCN DepRound sampling (tasks may be offloaded
  /// to several SCNs at once, violating (1b)).
  bool coordinate_scns = true;

  /// When true, edge weights are the probabilities themselves (the
  /// paper's literal w(m,i) ∝ p), making selection deterministic given p
  /// and starving exploration. Default false: Efraimidis-Spirakis keys
  /// u^(1/p) randomize selection so realized inclusion tracks p.
  bool deterministic_edges = false;

  /// Run the per-SCN slot phases (Alg. 2 probability calculation and
  /// Alg. 3 weight updates) across SCNs on a thread pool. Results are
  /// bit-identical to the serial path for any worker count: every SCN
  /// owns its state and its own stream-keyed RngStream. Default off —
  /// the serial path wins below a few dozen SCNs.
  bool parallel_scns = false;

  /// Pool used when `parallel_scns` is set; nullptr selects the
  /// process-wide default_thread_pool().
  class ThreadPool* pool = nullptr;

  std::uint64_t seed = 1234;
};

}  // namespace lfsc
