#include "lfsc/lfsc_policy.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>

#include "common/binio.h"
#include "common/log.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "lfsc/audit.h"
#include "solver/assignment_solver.h"

namespace lfsc {
namespace {

/// Keeps weight-update exponents representable: exp(±60) is ~1e26, far
/// from overflow, and the max-normalization removes any common scale
/// anyway.
constexpr double kMaxExponent = 60.0;

/// Weights live in [kWeightFloor, 1] relative to the running max; the
/// floor guards the strict positivity exp3m_probabilities requires.
constexpr double kWeightFloor = 1e-12;

/// Lazy renormalization band: a full-table rescale happens only once the
/// running max estimate exceeds this, so steady slots pay O(touched)
/// instead of O(cells). Probabilities are scale-invariant, so the raw
/// scale is unobservable; 1e6 stays far from double overflow even after
/// a worst-case exp(+60) single-slot jump.
constexpr double kScaleHigh = 1e6;

/// Largest slot the packed greedy path can represent: pack_greedy_entry
/// stores the task index in 16 bits. Bigger slots take the unpacked
/// bucketed path (same keys, same order, wider fields).
constexpr std::size_t kPackedMaxTasks = 0x10000;

/// Edge count where the greedy switches from the packed merge heaps to
/// the stable-radix variant. Below this the heaps' "only consumed edges
/// pay a sift" property wins; above it the edge list spills L2 and the
/// radix's sequential passes beat the heaps' random access.
constexpr std::size_t kRadixMinEdges = 256;

/// Degraded-feedback guard (DESIGN.md §9): rejects observations whose
/// fields a corrupted control channel could have poisoned — non-finite
/// values, or magnitudes far outside the model ranges (U, V in [0, 1],
/// Q in [1, 2]; the 100x slack tolerates experimental environments with
/// wider scales without letting a poisoned 1e9 through). Values inside
/// the envelope pass through untouched, so fault-free runs stay
/// bit-identical to the unhardened path.
bool feedback_sane(const TaskFeedback& f) noexcept {
  return std::isfinite(f.u) && std::isfinite(f.v) && std::isfinite(f.q) &&
         std::abs(f.u) <= 100.0 && std::abs(f.v) <= 100.0 && f.q > 0.0 &&
         f.q <= 100.0;
}

}  // namespace

LfscPolicy::LfscPolicy(const NetworkConfig& net, LfscConfig config)
    : net_(net),
      config_(config),
      partition_(config.context_dims, config.parts_per_dim),
      gamma_(config.gamma > 0.0
                 ? config.gamma
                 : exp3m_default_gamma(config.expected_tasks_per_scn,
                                       static_cast<std::size_t>(net.capacity_c),
                                       config.horizon)),
      eta_lambda_(config.eta_lambda > 0.0
                      ? config.eta_lambda
                      : 10.0 / std::sqrt(static_cast<double>(
                                   std::max<std::size_t>(1, config.horizon)))),
      delta_(config.delta > 0.0
                 ? config.delta
                 : 1.0 / std::sqrt(static_cast<double>(
                             std::max<std::size_t>(1, config.horizon)))) {
  net_.validate();
  if (config_.shards < 0) {
    throw std::invalid_argument("LfscConfig: shards must be >= 0");
  }
  if (!std::isfinite(config_.improve_budget_fraction) ||
      config_.improve_budget_fraction <= 0.0 ||
      config_.improve_budget_fraction > 1.0) {
    throw std::invalid_argument(
        "LfscConfig: improve_budget_fraction must be in (0, 1]");
  }
  if (gamma_ <= 0.0) gamma_ = 0.01;  // degenerate auto-formula inputs
  gamma_ = std::min(gamma_, 1.0);
  overload_ = OverloadController(config_.overload);  // validates
  cache_active_ = overload_.enabled();
  quarantined_.assign(static_cast<std::size_t>(net_.num_scns), 0);

  const auto scns = static_cast<std::size_t>(net_.num_scns);
  scn_state_.reserve(scns);
  for (int m = 0; m < net_.num_scns; ++m) {
    scn_state_.emplace_back(
        eta_lambda_, delta_, config_.lambda_max,
        RngStream(config_.seed,
                  kScnStreamBase + static_cast<std::uint64_t>(m)));
  }

  // SoA hypercube tables (DESIGN.md §12): one padded, cache-line-aligned
  // row per SCN so dense per-cell passes vectorize and sharded writers
  // never share a line.
  cells_ = partition_.cell_count();
  stride_ = pad_stride<double>(cells_);
  stride32_ = pad_stride<std::uint32_t>(cells_);
  stride8_ = pad_stride<unsigned char>(cells_);
  weights_.assign(scns * stride_, 0.0);
  cell_prob_.assign(scns * stride_, -1.0);
  cell_p_.assign(scns * stride_, 0.0);
  solve_values_.assign(scns * stride_, 0.0);
  ipw_g_.assign(scns * stride_, 0.0);
  ipw_v_.assign(scns * stride_, 0.0);
  ipw_q_.assign(scns * stride_, 0.0);
  payoff_.assign(scns * stride_, 0.0);
  expo_.assign(scns * stride_, 0.0);
  expw_.assign(scns * stride_, 0.0);
  ipw_n_.assign(scns * stride32_, 0);
  cell_count_.assign(scns * stride32_, 0);
  cube_capped_.assign(scns * stride8_, 0);
  for (std::size_t m = 0; m < scns; ++m) {
    std::fill(weight_row(m), weight_row(m) + cells_, 1.0);
  }

  // Shard plan: contiguous SCN ranges, resolved once so the per-slot
  // dispatch is just an indexed loop. Serial runs use one shard.
  std::size_t shard_target = 1;
  if (config_.parallel_scns) {
    ThreadPool& pool =
        config_.pool != nullptr ? *config_.pool : default_thread_pool();
    shard_target = config_.shards > 0
                       ? static_cast<std::size_t>(config_.shards)
                       : 4 * std::max<std::size_t>(1, pool.worker_count());
  }
  num_shards_ = std::clamp<std::size_t>(shard_target, 1,
                                        std::max<std::size_t>(1, scns));
  shard_start_.resize(num_shards_ + 1);
  for (std::size_t s = 0; s <= num_shards_; ++s) {
    shard_start_[s] = s * scns / num_shards_;
  }

  // Telemetry registration (schema in DESIGN.md §8); per-SCN metrics are
  // sharded with one stream per SCN so the parallel_scns phases write
  // race-free and aggregate reads merge in SCN order (deterministic).
  tel_select_ = &telemetry_.timer("lfsc.select");
  tel_observe_ = &telemetry_.timer("lfsc.observe");
  tel_calculating_ = &telemetry_.timer("lfsc.alg2.calculating");
  tel_greedy_ = &telemetry_.timer("lfsc.alg4.greedy_select");
  tel_improve_ = &telemetry_.timer("lfsc.alg4.improve");
  tel_improve_moves_ = &telemetry_.counter("lfsc.improve.moves", "moves");
  tel_updating_ = &telemetry_.timer("lfsc.alg3.updating");
  tel_shard_busy_ = &telemetry_.timer("lfsc.shard.busy", "s", num_shards_);
  tel_slots_ = &telemetry_.counter("lfsc.slots", "slots");
  tel_accepted_ = &telemetry_.counter("lfsc.scn.accepted", "tasks", scns);
  tel_rejected_ = &telemetry_.counter("lfsc.feedback.rejected", "tasks", scns);
  tel_lambda_qos_ = &telemetry_.gauge("lfsc.lagrange.qos", "1", scns);
  tel_lambda_res_ = &telemetry_.gauge("lfsc.lagrange.resource", "1", scns);
  tel_capset_ = &telemetry_.histogram(
      "lfsc.exp3m.capset_size", {0, 1, 2, 4, 8, 16, 32, 64}, "arms", scns);
  tel_occupancy_ = &telemetry_.histogram(
      "lfsc.cells.touched", {0, 1, 2, 4, 8, 16, 32, 64, 128}, "cells", scns);
  if (overload_.enabled() || config_.audit_stride > 0) {
    ensure_overload_telemetry();
  }
}

void LfscPolicy::ensure_overload_telemetry() {
  if (tel_overload_rung_ != nullptr) return;
  tel_overload_rung_ = &telemetry_.gauge("overload.rung", "rung");
  tel_overload_degraded_ =
      &telemetry_.counter("overload.slots_degraded", "slots");
  tel_overload_shed_ = &telemetry_.counter("overload.slots_shed", "slots");
  tel_overload_over_ =
      &telemetry_.counter("overload.slots_over_budget", "slots");
  tel_overload_escal_ = &telemetry_.counter("overload.escalations");
  tel_overload_recov_ = &telemetry_.counter("overload.recoveries");
  tel_overload_skipped_ = &telemetry_.counter("overload.updates_skipped");
  tel_overload_midshed_ = &telemetry_.counter("overload.mid_slot_sheds");
  tel_audit_checks_ = &telemetry_.counter("audit.checks");
  tel_audit_violations_ = &telemetry_.counter("audit.violations");
  tel_audit_quarantined_ = &telemetry_.gauge("audit.quarantined", "scns");
}

void LfscPolicy::publish_overload_telemetry() {
  if (tel_overload_rung_ == nullptr) return;
  const OverloadCounters& c = overload_.counters();
  tel_overload_rung_->set(
      static_cast<double>(static_cast<std::uint8_t>(overload_.rung())));
  tel_overload_degraded_->add(c.degraded_slots - tel_prev_.degraded_slots);
  tel_overload_shed_->add(c.shed_slots - tel_prev_.shed_slots);
  tel_overload_over_->add(c.over_budget_slots - tel_prev_.over_budget_slots);
  tel_overload_escal_->add(c.escalations - tel_prev_.escalations);
  tel_overload_recov_->add(c.recoveries - tel_prev_.recoveries);
  tel_overload_skipped_->add(c.updates_skipped - tel_prev_.updates_skipped);
  tel_overload_midshed_->add(c.mid_slot_sheds - tel_prev_.mid_slot_sheds);
  tel_prev_ = c;
}

bool LfscPolicy::set_slot_budget(std::uint32_t budget_us) {
  if (last_slot_t_ != -1) {
    throw std::logic_error(
        "LfscPolicy: set_slot_budget must precede the first slot");
  }
  config_.overload.slot_budget_us = budget_us;
  overload_ = OverloadController(config_.overload);  // validates
  cache_active_ = overload_.enabled();
  if (overload_.enabled()) ensure_overload_telemetry();
  return true;
}

void LfscPolicy::reconfigure_slot_budget(std::uint32_t budget_us) {
  overload_.set_budget(budget_us);  // throws on a forced rung
  config_.overload.slot_budget_us = budget_us;
  cache_active_ = overload_.enabled();
  // Stale cached probabilities from an earlier budgeted phase must not
  // feed the explore-capped rung after weights moved uncached: -1 marks
  // every cell "solve exactly before reuse".
  std::fill(cell_prob_.begin(), cell_prob_.end(), -1.0);
  if (overload_.enabled()) ensure_overload_telemetry();
}

void LfscPolicy::set_constraint_thresholds(double qos_alpha,
                                           double resource_beta) {
  NetworkConfig next = net_;
  next.qos_alpha = qos_alpha;
  next.resource_beta = resource_beta;
  next.validate();  // throws before anything is touched
  net_ = next;
}

template <typename Fn>
void LfscPolicy::for_each_scn(const Fn& fn) {
  const std::size_t count = scn_state_.size();
  if (num_shards_ > 1) {
    const auto run_shard = [&](std::size_t s) {
      const telemetry::ScopedTimer shard_timer(*tel_shard_busy_, s);
      // One deadline probe per shard (not per SCN: a clock read per SCN
      // would dominate small cells). A blown budget latches shard_shed_
      // so the remaining shards skip straight through their SCNs — the
      // counting mid-slot check after this phase sheds the slot, and
      // elapsed time is monotone, so the probe can never fire on a slot
      // the official check would keep.
      if (probe_active_ && !shard_shed_.load(std::memory_order_relaxed) &&
          overload_.over_budget_probe()) {
        shard_shed_.store(true, std::memory_order_relaxed);
      }
      for (std::size_t m = shard_start_[s]; m < shard_start_[s + 1]; ++m) {
        fn(m);
      }
    };
    ThreadPool& pool =
        config_.pool != nullptr ? *config_.pool : default_thread_pool();
    if (pool.worker_count() > 1) {
      parallel_for(pool, num_shards_, 1, run_shard);
    } else {
      // Pool degenerated to one worker: run the same shard ranges inline
      // so the per-shard telemetry streams stay populated.
      for (std::size_t s = 0; s < num_shards_; ++s) run_shard(s);
    }
    return;
  }
  for (std::size_t m = 0; m < count; ++m) fn(m);
}

void LfscPolicy::calculate_probabilities(std::size_t m, const SlotInfo& info) {
  auto& state = scn_state_[m];
  const auto& cover = info.coverage[m];
  const std::size_t num_tasks = cover.size();
  const auto c = static_cast<std::size_t>(net_.capacity_c);
  const simd::Kernels& kr = simd::active();

  // Alg. 2 lines 1-5 on the SoA row: histogram the covered tasks into
  // hypercube groups. All arms of one cell share the cube's weight, so
  // the epsilon fixed point runs over (weight, multiplicity) groups
  // (exp3m_grouped) — O(C log C) instead of a heap over all K arms.
  std::uint32_t* cnt = count_row(m);
  auto& cells = state.last_cells;
  auto& gcells = state.group_cells;
  cells.resize(num_tasks);
  gcells.clear();
  for (std::size_t j = 0; j < num_tasks; ++j) {
    const auto cell = static_cast<std::uint32_t>(
        task_cells_[static_cast<std::size_t>(cover[j])]);
    cells[j] = cell;
    if (cnt[cell]++ == 0) gcells.push_back(cell);
  }
  const std::size_t groups = gcells.size();
  auto& gv = state.group_values;
  auto& gc = state.group_counts;
  gv.resize(groups);
  gc.resize(groups);
  const double* w = weight_row(m);
  for (std::size_t g = 0; g < groups; ++g) {
    gv[g] = w[gcells[g]];
    gc[g] = cnt[gcells[g]];
  }
  // The count row is reused next slot: restore its zeros (O(groups)).
  for (std::size_t g = 0; g < groups; ++g) cnt[gcells[g]] = 0;

  Exp3mGroupedResult res;
  exp3m_grouped(gv, gc, c, gamma_, res, state.grouped_scratch);

  auto& out = state.last;
  out.p.resize(num_tasks);
  out.capped.assign(num_tasks, 0);
  state.last_solve_exact = 1;

  if (res.all_capped) {
    // Fewer arms than plays: every arm is selected with certainty.
    std::fill(out.p.begin(), out.p.end(), 1.0);
    std::fill(out.capped.begin(), out.capped.end(), 1);
    out.num_capped = num_tasks;
    out.epsilon = 0.0;
    out.weight_sum = res.weight_sum;
  } else if (res.uniform) {
    // gamma == 1 is pure exploration: uniform marginals k/K (< 1 here).
    std::fill(out.p.begin(), out.p.end(), res.base);
    out.num_capped = 0;
    out.epsilon = 0.0;
    out.weight_sum = res.weight_sum;
  } else {
    // Values in the solve's domain: the raw weight row, or the
    // max-normalized copy when the numeric guard rescaled (rare).
    const double* val = w;
    if (res.rescaled) {
      double* sv = solve_row(m);
      for (std::size_t cell = 0; cell < cells_; ++cell) {
        sv[cell] = std::max(w[cell] / res.max_weight, 1e-12);
      }
      val = sv;
    }
    // Per-cell uncapped marginal clamp(scale*w + base, 0, 1), one SIMD
    // pass over the row (C lanes); lanes for cells absent this slot are
    // computed but never gathered.
    double* cellp = cell_p_row(m);
    kr.scale_clamp01(val, cells_, res.scale, res.base, cellp);
    const double capped_p =
        std::clamp(res.scale * res.epsilon + res.base, 0.0, 1.0);
    // Capped marking: the same global arm-order countdown as the
    // arm-level reference — arms with value >= epsilon, first
    // num_capped only, so exact ties beyond the fixed point stay
    // uncapped and |S'| and the flags match exp3m_probabilities bit for
    // bit.
    std::size_t remaining = res.num_capped;
    if (remaining > 0) {
      const double eps = res.epsilon;
      for (std::size_t j = 0; j < num_tasks && remaining > 0; ++j) {
        if (val[cells[j]] >= eps) {
          out.capped[j] = 1;
          --remaining;
        }
      }
    }
    // Per-arm expansion: gather each arm's cell marginal, capped arms
    // take the shared capped probability.
    kr.gather_select_prob(cellp, cells.data(), out.capped.data(), capped_p,
                          num_tasks, out.p.data());
    out.num_capped = res.num_capped;
    out.epsilon = res.epsilon;
    out.weight_sum = res.weight_sum;
  }

  if (cache_active_) {
    // Remember each cell's exact-solve probability for the
    // explore-capped rung; invalidated when the cell's weight moves.
    double* cprob = cell_prob_row(m);
    for (std::size_t j = 0; j < num_tasks; ++j) {
      cprob[cells[j]] = out.p[j];
    }
  }

  // |S'| this slot: arms whose probability the Exp3.M cap clipped to 1.
  tel_capset_->observe(static_cast<double>(out.num_capped), m);
}

void LfscPolicy::calculate_probabilities_degraded(std::size_t m,
                                                  const SlotInfo& info) {
  auto& state = scn_state_[m];
  const auto& cover = info.coverage[m];
  const std::size_t num_tasks = cover.size();
  const auto c = static_cast<std::size_t>(net_.capacity_c);

  state.last_cells.resize(num_tasks);
  state.task_weights.resize(num_tasks);
  const double* w = weight_row(m);
  double sum_w = 0.0;
  for (std::size_t j = 0; j < num_tasks; ++j) {
    const auto cell = static_cast<std::uint32_t>(
        task_cells_[static_cast<std::size_t>(cover[j])]);
    state.last_cells[j] = cell;
    const double wj = w[cell];
    state.task_weights[j] = wj;
    sum_w += wj;
  }

  auto& out = state.last;
  out.p.resize(num_tasks);
  out.capped.assign(num_tasks, 0);
  out.num_capped = 0;
  out.epsilon = 0.0;
  out.weight_sum = sum_w;
  state.last_solve_exact = 0;

  if (num_tasks <= c) {
    // Fewer arms than plays: every arm is forced, same as the exact path.
    for (std::size_t j = 0; j < num_tasks; ++j) {
      out.p[j] = 1.0;
      out.capped[j] = 1;
    }
    out.num_capped = num_tasks;
    tel_capset_->observe(static_cast<double>(out.num_capped), m);
    return;
  }

  // One closed-form pass instead of the ε_t fixed point: the Exp3.M
  // marginal c·((1-γ')·w/Σw + γ'/K) with capped exploration
  // γ' = min(γ, degraded_gamma), clipped per arm to 1. Clipping loses
  // the Σp = c property (the auditor knows: last_solve_exact = 0) but
  // keeps every marginal valid, and Alg. 4 re-imposes (1a)/(1b) exactly.
  // Cells whose weight is unchanged since their last exact solve reuse
  // that solve's probability instead.
  const double gamma_deg = std::min(gamma_, overload_.config().degraded_gamma);
  const double cd = static_cast<double>(c);
  const double uniform = cd / static_cast<double>(num_tasks);
  const double mix = gamma_deg * uniform;
  const double scale = (sum_w > 0.0 && std::isfinite(sum_w))
                           ? (1.0 - gamma_deg) * cd / sum_w
                           : 0.0;
  const double* cprob = cell_prob_row(m);
  std::size_t capped = 0;
  for (std::size_t j = 0; j < num_tasks; ++j) {
    const double cached =
        cache_active_ ? cprob[state.last_cells[j]] : -1.0;
    double p;
    if (cached >= 0.0) {
      p = cached;
    } else if (scale > 0.0) {
      p = state.task_weights[j] * scale + mix;
    } else {
      // Degenerate weight sum (all-floored or non-finite): fall back to
      // the uniform marginal, which is always valid.
      p = uniform;
    }
    if (!std::isfinite(p)) p = uniform;
    if (p >= 1.0) {
      p = 1.0;
      out.capped[j] = 1;
      ++capped;
    } else if (p < 0.0) {
      p = 0.0;
    }
    out.p[j] = p;
  }
  out.num_capped = capped;
  tel_capset_->observe(static_cast<double>(out.num_capped), m);
}

Assignment LfscPolicy::select(const SlotInfo& info) {
  Assignment out;
  select(info, out);
  return out;
}

void LfscPolicy::select(const SlotInfo& info, Assignment& out) {
  if (info.coverage.size() != scn_state_.size()) {
    throw std::invalid_argument("LfscPolicy: SCN count mismatch");
  }
  const telemetry::ScopedTimer select_timer(*tel_select_);
  tel_slots_->add(1);
  last_slot_t_ = info.t;
  const std::size_t num_scns = scn_state_.size();

  // Overload ladder (DESIGN.md §11): pick this slot's rung and start its
  // deadline clock. Inert (kFull, no clock read) without a budget.
  slot_rung_ = overload_.enabled() ? overload_.begin_slot() : DegradeRung::kFull;
  if (slot_rung_ == DegradeRung::kShed) {
    // Shed slot: accept nothing. Constraints (1a)/(1b) hold vacuously;
    // observe() will still step the dual ascent from the empty slot.
    out.selected.resize(num_scns);
    for (auto& sel : out.selected) sel.clear();
    return;
  }

  task_cells_.resize(info.tasks.size());
  for (std::size_t i = 0; i < info.tasks.size(); ++i) {
    task_cells_[i] = partition_.index(info.tasks[i].context.normalized);
  }

  if (!config_.coordinate_scns) {
    // Ablation: each SCN independently DepRounds its own marginals; tasks
    // may be duplicated across SCNs (constraint (1b) is intentionally
    // unprotected, which the ablation bench quantifies).
    {
      // Phase wall time, one sample per slot: per-call timers inside the
      // per-SCN loop cost two clock reads per SCN and blew the <=2%
      // telemetry overhead budget at paper scale.
      const telemetry::ScopedTimer calc_timer(*tel_calculating_);
      for_each_scn([&](std::size_t m) {
        // DepRound needs marginals, so the greedy-only rung degrades to
        // the closed-form pass on this (ablation) path.
        if (effective_rung(m) == DegradeRung::kFull) {
          calculate_probabilities(m, info);
        } else {
          calculate_probabilities_degraded(m, info);
        }
      });
    }
    out.selected.resize(num_scns);
    for (std::size_t m = 0; m < num_scns; ++m) {
      auto& state = scn_state_[m];
      const auto picks = dep_round(state.last.p, state.rng);
      auto& sel = out.selected[m];
      sel.clear();
      sel.reserve(picks.size());
      for (const auto j : picks) sel.push_back(static_cast<int>(j));
    }
    return;
  }

  // Per-SCN edge ranges: offsets are a prefix sum over coverage sizes,
  // so the parallel phase writes disjoint subranges of entries_.
  bucket_start_.resize(num_scns + 1);
  bucket_start_[0] = 0;
  for (std::size_t m = 0; m < num_scns; ++m) {
    bucket_start_[m + 1] =
        bucket_start_[m] + static_cast<int>(info.coverage[m].size());
  }
  const auto num_edges = static_cast<std::size_t>(bucket_start_[num_scns]);

  // Greedy collaborative assignment (Alg. 4) on probability-derived edge
  // keys. Default: Efraimidis-Spirakis sampling — top-c by key is a
  // probability-proportional random sample, so exploration survives the
  // deterministic greedy. Only the key *order* matters to the greedy, so
  // instead of u^(1/p) we use the strictly increasing transform
  //   key = 1 / (1 - ln(u)/p)  in (0, 1],
  // which selects identical sets while avoiding the exp() per edge.
  // The uniforms are drawn for the whole coverage up front (one per
  // arm, including capped and zero arms, keeping the stream layout
  // data-independent) and the keys come out of the es_keys SIMD kernel.
  // `deterministic_edges` reproduces the literal paper weighting
  // w(m,i) ∝ p.
  //
  // The packed edge representation stores task/local indices in 16 bits;
  // a slot with more tasks than that takes the unpacked bucketed path.
  // Both paths compare keys at float precision with the same tie-break
  // (weight desc, scn asc, task asc), so the fallback changes layout,
  // not the assignment.
  const bool packed = info.tasks.size() <= kPackedMaxTasks;
  if (packed) {
    entries_.resize(num_edges);
  } else {
    wide_entries_.resize(num_edges);
  }
  shard_shed_.store(false, std::memory_order_relaxed);
  probe_active_ = overload_.enabled();
  {
    // Phase wall time, one sample per slot (see the note in the
    // uncoordinated branch). Includes the per-SCN edge-key build, which
    // consumes Alg. 2's probabilities in the same pass.
    const telemetry::ScopedTimer calc_timer(*tel_calculating_);
    for_each_scn([&](std::size_t m) {
      // A shard probe found the budget blown: the slot is about to be
      // shed by the mid-slot check below, so skip the remaining Alg. 2
      // work (only reached on budgeted slots, which are wall-clock
      // dependent — and therefore non-deterministic — already).
      if (probe_active_ && shard_shed_.load(std::memory_order_relaxed)) {
        return;
      }
      auto& state = scn_state_[m];
      const auto& cover = info.coverage[m];
      const std::size_t num_tasks = cover.size();
      const auto offset = static_cast<std::size_t>(bucket_start_[m]);
      const DegradeRung rung = effective_rung(m);

      if (rung == DegradeRung::kGreedyOnly) {
        // Alg. 2 skipped entirely: rank edges by the cached weight mean
        // of each task's hypercube (scale-normalized so keys stay in
        // [0, 1]; a corrupt quarantined table sanitizes to key 0). No
        // probabilities are produced and no RNG is drawn.
        const double* w = weight_row(m);
        const double inv_scale =
            state.weight_scale > 0.0 ? 1.0 / state.weight_scale : 0.0;
        for (std::size_t j = 0; j < num_tasks; ++j) {
          const std::size_t cell =
              task_cells_[static_cast<std::size_t>(cover[j])];
          const double wn = w[cell] * inv_scale;
          const float key = (std::isfinite(wn) && wn > 0.0)
                                ? static_cast<float>(std::min(wn, 1.0))
                                : 0.0f;
          if (packed) {
            entries_[offset + j] =
                pack_greedy_entry(key, cover[j], static_cast<int>(j));
          } else {
            wide_entries_[offset + j] = {static_cast<double>(key), cover[j],
                                         static_cast<int>(j)};
          }
        }
        return;
      }

      const bool degraded = rung != DegradeRung::kFull;
      if (degraded) {
        calculate_probabilities_degraded(m, info);
      } else {
        calculate_probabilities(m, info);
      }
      const double* p = state.last.p.data();
      const float* keys = nullptr;
      if (config_.deterministic_edges || degraded) {
        // Degraded rungs keep edge keys deterministic (key = p): the
        // E-S sampling draw is skipped, both to save the uniforms and
        // to leave the RNG stream untouched by degraded slots.
        auto& kbuf = state.es_keys;
        kbuf.resize(num_tasks);
        for (std::size_t j = 0; j < num_tasks; ++j) {
          kbuf[j] = static_cast<float>(p[j]);
        }
        keys = kbuf.data();
      } else {
        auto& u = state.es_u;
        auto& kbuf = state.es_keys;
        u.resize(num_tasks);
        kbuf.resize(num_tasks);
        for (std::size_t j = 0; j < num_tasks; ++j) {
          u[j] = static_cast<float>(state.rng.uniform());
        }
        simd::active().es_keys(p, u.data(), num_tasks, kbuf.data());
        keys = kbuf.data();
      }
      if (packed) {
        for (std::size_t j = 0; j < num_tasks; ++j) {
          entries_[offset + j] =
              pack_greedy_entry(keys[j], cover[j], static_cast<int>(j));
        }
      } else {
        for (std::size_t j = 0; j < num_tasks; ++j) {
          wide_entries_[offset + j] = {static_cast<double>(keys[j]), cover[j],
                                       static_cast<int>(j)};
        }
      }
    });
  }
  probe_active_ = false;

  // Mid-slot deadline check between Alg. 2 and Alg. 4: when the budget
  // is already gone, shed the rest of the slot (the ladder escalates at
  // end_slot from the full measurement).
  if (overload_.should_shed_mid_slot()) {
    slot_rung_ = DegradeRung::kShed;
    out.selected.resize(num_scns);
    for (auto& sel : out.selected) sel.clear();
    return;
  }

  // Anytime improver gate (DESIGN.md §15): only with leftover budget to
  // spend — a live deadline (timing, so zero clock reads otherwise), the
  // improve switch, and a rung that still runs learning (the greedy-only
  // and shed rungs skip it).
  const bool improving = config_.improve && overload_.timing() &&
                         slot_rung_ < DegradeRung::kGreedyOnly;
  const SolverKind solver = config_.solver;
  // The packed/bucketed greedy paths consume their staged entries in
  // place, so any consumer that needs the edges afterwards (the exact
  // solver kinds, the improver) snapshots a flat view first. Never built
  // on the default path.
  const bool need_edges = improving || solver == SolverKind::kGreedy ||
                          solver == SolverKind::kFlow ||
                          solver == SolverKind::kBnb;
  if (need_edges) {
    improve_edges_.clear();
    improve_edges_.reserve(num_edges);
    for (std::size_t m = 0; m < num_scns; ++m) {
      for (int k = bucket_start_[m]; k < bucket_start_[m + 1]; ++k) {
        Edge edge;
        edge.scn = static_cast<int>(m);
        if (packed) {
          const std::uint64_t e = entries_[static_cast<std::size_t>(k)];
          edge.task = packed_entry_task(e);
          edge.local = packed_entry_local(e);
          edge.weight = static_cast<double>(
              std::bit_cast<float>(static_cast<std::uint32_t>(e >> 32)));
        } else {
          const GreedyBucketEntry& e =
              wide_entries_[static_cast<std::size_t>(k)];
          edge.task = e.task;
          edge.local = e.local;
          edge.weight = e.weight;
        }
        improve_edges_.push_back(edge);
      }
    }
  }

  {
    // The greedy entry points below resize+clear `out` themselves, so a
    // reused assignment keeps its warm per-SCN list capacity.
    const telemetry::ScopedTimer greedy_timer(*tel_greedy_);
    if (solver == SolverKind::kGreedy || solver == SolverKind::kFlow ||
        solver == SolverKind::kBnb) {
      // Non-hot-path kinds run over the flat snapshot: the span-based
      // greedy reference, or the exact solvers (flow/bnb) for operators
      // who want per-slot optimality and can afford the wall time.
      solve_assignment(solver, static_cast<int>(num_scns),
                       static_cast<int>(info.tasks.size()), net_.capacity_c,
                       improve_edges_, out, greedy_scratch_);
    } else if (packed) {
      // Fallback chain radix -> packed -> wide: at city scale the edge
      // list outgrows L2 and the merge heaps' random access loses to
      // the radix variant's sequential passes; below the threshold the
      // heaps' consume-only-P-edges property wins. Both produce the
      // identical assignment (entries are staged tasks-ascending per
      // bucket), so the cutover is purely a performance decision —
      // kPacked/kRadix pin one side of it.
      const bool radix =
          solver == SolverKind::kRadix ||
          (solver == SolverKind::kAuto && num_edges >= kRadixMinEdges);
      if (radix) {
        greedy_select_radix(static_cast<int>(num_scns),
                            static_cast<int>(info.tasks.size()),
                            net_.capacity_c, bucket_start_, entries_, out,
                            greedy_scratch_);
      } else {
        greedy_select_packed(static_cast<int>(num_scns),
                             static_cast<int>(info.tasks.size()),
                             net_.capacity_c, bucket_start_, entries_, out,
                             greedy_scratch_);
      }
    } else {
      greedy_select_bucketed(static_cast<int>(num_scns),
                             static_cast<int>(info.tasks.size()),
                             net_.capacity_c, bucket_start_, wide_entries_,
                             out, greedy_scratch_);
    }
  }

  if (improving) {
    // Spend only the leftover budget: the deadline fires at
    // improve_budget_fraction of the slot budget, leaving the remainder
    // for observe(). Quarantined SCNs are frozen — their assignments
    // stay untouched and no task moves into them.
    const telemetry::ScopedTimer improve_timer(*tel_improve_);
    const double limit_us =
        static_cast<double>(config_.overload.slot_budget_us) *
        config_.improve_budget_fraction;
    ShiftSwapOptions opts;
    opts.deadline = [this, limit_us] {
      return overload_.elapsed_us() > limit_us;
    };
    if (quarantine_count_ > 0) {
      opts.frozen_scns = std::span<const std::uint8_t>(quarantined_.data(),
                                                       quarantined_.size());
    }
    const ShiftSwapStats st = improve_shift_swap(
        static_cast<int>(num_scns), static_cast<int>(info.tasks.size()),
        net_.capacity_c, improve_edges_, out, opts, improve_scratch_);
    tel_improve_moves_->add(static_cast<std::uint64_t>(st.moves()));
  }
}

void LfscPolicy::reset_slot_rows(std::size_t m) noexcept {
  std::fill(ipw_g_row(m), ipw_g_row(m) + cells_, 0.0);
  std::fill(ipw_v_row(m), ipw_v_row(m) + cells_, 0.0);
  std::fill(ipw_q_row(m), ipw_q_row(m) + cells_, 0.0);
  std::fill(ipw_n_row(m), ipw_n_row(m) + cells_, 0u);
  std::fill(cube_capped_row(m), cube_capped_row(m) + cells_,
            static_cast<unsigned char>(0));
}

void LfscPolicy::update_scn(std::size_t m, const SlotInfo& info,
                            const std::vector<int>& selected,
                            const std::vector<TaskFeedback>& feedback) {
  auto& state = scn_state_[m];
  const auto& cover = info.coverage[m];
  const std::size_t num_tasks = cover.size();
  tel_accepted_->add(feedback.size(), m);
  if (num_tasks == 0) {
    // No coverage: still decay the multipliers toward feasibility
    // pressure from an empty slot (alpha unmet, no resource use).
    state.multipliers.update(0.0, 0.0, net_.qos_alpha, net_.resource_beta);
    tel_lambda_qos_->set(state.multipliers.qos(), m);
    tel_lambda_res_->set(state.multipliers.resource(), m);
    if (max_delay_ > 0) {
      // Vacant frozen state: a late batch for this slot has nothing to
      // apply (the SCN was in outage or simply uncovered).
      auto& pend =
          pending_[static_cast<std::size_t>(info.t) % pending_.size()]
              .per_scn[m];
      pend.entries.clear();
    }
    return;
  }

  // Alg. 3 lines 1-8: IPW estimates per task, accumulated per hypercube
  // in the SCN's SoA rows. Presence first (every covered task grows its
  // cell's divisor), then the sparse IPW contributions of the selected
  // tasks only — no dense per-task staging buffers. Insane observations
  // (corrupted feedback channel: NaN/infinite/out-of-range fields) are
  // rejected before they touch any estimate, as if that one observation
  // had been lost.
  const auto& cells = state.last_cells;
  double* sum_g = ipw_g_row(m);
  double* sum_v = ipw_v_row(m);
  double* sum_q = ipw_q_row(m);
  std::uint32_t* count = ipw_n_row(m);
  unsigned char* capped = cube_capped_row(m);
  // First-touch order of the covered cells. Part of the numeric
  // contract (DESIGN.md §10): the floor a cell receives in the
  // write-back depends on the running peak *so far*, so the sweep must
  // visit cells in the same order as the reference transliteration.
  auto& touched_cells = state.touched_cells;
  touched_cells.clear();
  for (std::size_t j = 0; j < num_tasks; ++j) {
    if (count[cells[j]]++ == 0) touched_cells.push_back(cells[j]);
  }
  const std::size_t touched = touched_cells.size();
  double completed_sum = 0.0;
  double resource_sum = 0.0;
  for (const auto& f : feedback) {
    const auto j = static_cast<std::size_t>(f.local_index);
    if (j >= num_tasks) {
      reset_slot_rows(m);
      throw std::out_of_range("LfscPolicy: bad feedback index");
    }
    if (!feedback_sane(f)) {
      tel_rejected_->add(1, m);
      continue;
    }
    const double p = state.last.p.empty() ? 0.0 : state.last.p[j];
    if (p > 0.0) {
      const double g = f.q > 0.0 ? f.u * f.v / f.q : 0.0;
      const std::uint32_t cell = cells[j];
      sum_g[cell] += g / p;
      sum_v[cell] += f.v / p;
      // q normalized to [0,1] for the update
      sum_q[cell] += (f.q / 2.0) / p;
    }
    completed_sum += f.v;
    resource_sum += f.q;
  }

  // Per-slot learning rate: the Exp3.M exponent c*gamma/K adapted to the
  // slot's arm count, scaled by the configured eta_scale.
  const double eta_t = config_.eta_scale * gamma_ *
                       static_cast<double>(net_.capacity_c) /
                       static_cast<double>(num_tasks);
  const double lambda_qos =
      config_.use_lagrangian ? state.multipliers.qos() : 0.0;
  const double lambda_res =
      config_.use_lagrangian ? state.multipliers.resource() : 0.0;

  // A hypercube is "capped" this slot if any of its present tasks was in
  // S' (they share the same weight, so capping is a per-weight property).
  for (std::size_t j = 0; j < num_tasks; ++j) {
    if (state.last.capped[j]) capped[cells[j]] = 1;
  }

  // Freeze this slot's update inputs for late arrivals: eta_t, the
  // multipliers the on-time update used, and per selected task its
  // decision probability and the reciprocal of its cell's IPW divisor.
  // Entries in capped cubes are skipped — their weights don't move this
  // slot, on time or late.
  if (max_delay_ > 0) {
    auto& pend =
        pending_[static_cast<std::size_t>(info.t) % pending_.size()]
            .per_scn[m];
    pend.eta_t = eta_t;
    pend.lambda_qos = lambda_qos;
    pend.lambda_res = lambda_res;
    pend.entries.clear();
    for (const int j : selected) {
      const std::uint32_t cell = cells[static_cast<std::size_t>(j)];
      if (capped[cell] != 0) continue;
      pend.entries.push_back(
          {j, cell, state.last.p[static_cast<std::size_t>(j)],
           1.0 / static_cast<double>(count[cell])});
    }
  }

  // Alg. 3 lines 9-14, dense over the SCN's row: the IPW payoff and the
  // exponentials run through the SIMD kernels (C lanes per SCN beats
  // sparse scalar exp() for the hypercube counts this policy runs), and
  // the selective write-back touches only present, uncapped cubes. The
  // eager floor relative to the running max bound keeps every weight
  // representable and strictly positive without rescaling the whole
  // table each slot. A non-finite payoff cannot normally occur (inputs
  // are sanitized, p has the gamma floor) but skipping it is cheap
  // insurance against poisoning the table.
  const simd::Kernels& kr = simd::active();
  double* pay = payoff_row(m);
  double* expo = expo_row(m);
  double* expw = expw_row(m);
  kr.ipw_payoff(sum_g, sum_v, sum_q, count, cells_, lambda_qos, lambda_res,
                pay);
  for (std::size_t cell = 0; cell < cells_; ++cell) {
    double e = 0.0;
    if (count[cell] != 0 && capped[cell] == 0 && std::isfinite(pay[cell])) {
      e = std::clamp(eta_t * pay[cell], -kMaxExponent, kMaxExponent);
    }
    expo[cell] = e;
  }
  kr.exp_stream(expo, cells_, expw);
  double* w = weight_row(m);
  double* cprob = cache_active_ ? cell_prob_row(m) : nullptr;
  double weight_scale = state.weight_scale;
  // Write-back in first-touch order, not index order: the evolving
  // weight_scale floor makes the sweep order part of the trajectory.
  for (const std::uint32_t cell : touched_cells) {
    if (capped[cell] != 0 || !std::isfinite(pay[cell])) continue;
    const double updated =
        std::max(w[cell] * expw[cell], weight_scale * kWeightFloor);
    w[cell] = updated;
    weight_scale = std::max(weight_scale, updated);
    if (cprob != nullptr) cprob[cell] = -1.0;  // cached p is stale
  }
  state.weight_scale = weight_scale;
  // Scale invariance of Alg. 2 lets us defer the max-renormalization
  // until the scale drifts out of band; this keeps weights bounded over
  // arbitrarily long horizons at amortized O(1) per touched cell.
  if (state.weight_scale > kScaleHigh) renormalize(m);

  tel_occupancy_->observe(static_cast<double>(touched), m);

  // Reset the slot rows now (an O(cells) fill — cells is tiny) so the
  // next slot starts clean.
  reset_slot_rows(m);

  // Alg. 3 lines 15-17: dual ascent on the multipliers.
  state.multipliers.update(completed_sum, resource_sum, net_.qos_alpha,
                           net_.resource_beta);
  tel_lambda_qos_->set(state.multipliers.qos(), m);
  tel_lambda_res_->set(state.multipliers.resource(), m);
}

void LfscPolicy::update_scn_multiplier_only(
    std::size_t m, const SlotInfo& info,
    const std::vector<TaskFeedback>& feedback) {
  auto& state = scn_state_[m];
  const std::size_t num_tasks = info.coverage[m].size();
  tel_accepted_->add(feedback.size(), m);

  // Realized constraint sums from the sane on-time arrivals; the IPW
  // weight update is intentionally absent on this path (greedy-only
  // rung, shed slot, quarantined SCN, or a deadline-skipped update).
  double completed_sum = 0.0;
  double resource_sum = 0.0;
  for (const auto& f : feedback) {
    if (static_cast<std::size_t>(f.local_index) >= num_tasks) {
      throw std::out_of_range("LfscPolicy: bad feedback index");
    }
    if (!feedback_sane(f)) {
      tel_rejected_->add(1, m);
      continue;
    }
    completed_sum += f.v;
    resource_sum += f.q;
  }
  state.multipliers.update(completed_sum, resource_sum, net_.qos_alpha,
                           net_.resource_beta);
  tel_lambda_qos_->set(state.multipliers.qos(), m);
  tel_lambda_res_->set(state.multipliers.resource(), m);

  if (max_delay_ > 0) {
    // No frozen inputs for this slot: a late batch has nothing to apply
    // (the weight update did not run on time either).
    auto& pend = pending_[static_cast<std::size_t>(info.t) % pending_.size()]
                     .per_scn[m];
    pend.entries.clear();
  }
}

void LfscPolicy::observe(const SlotInfo& info, const Assignment& assignment,
                         const SlotFeedback& feedback) {
  if (info.t != last_slot_t_) {
    throw std::logic_error("LfscPolicy: observe() without matching select()");
  }
  if (assignment.selected.size() != scn_state_.size() ||
      feedback.per_scn.size() != scn_state_.size()) {
    throw std::invalid_argument("LfscPolicy: feedback SCN count mismatch");
  }
  {
    const telemetry::ScopedTimer observe_timer(*tel_observe_);
    const telemetry::ScopedTimer updating_timer(*tel_updating_);

    // Deadline check before the Alg. 3 phase: an already-blown budget
    // downgrades this slot's update to multiplier-only (counted under
    // overload.updates_skipped). No-op while the controller is inert.
    const bool skip_update =
        slot_rung_ >= DegradeRung::kGreedyOnly || overload_.should_skip_update();

    if (max_delay_ > 0) {
      // Claim the ring slot before the parallel phase; each SCN then
      // fills only its own PendingScn (race-free).
      auto& slot =
          pending_[static_cast<std::size_t>(info.t) % pending_.size()];
      slot.t = info.t;
      slot.per_scn.resize(scn_state_.size());
    }
    for_each_scn([&](std::size_t m) {
      if (skip_update || effective_rung(m) >= DegradeRung::kGreedyOnly) {
        update_scn_multiplier_only(m, info, feedback.per_scn[m]);
      } else {
        update_scn(m, info, assignment.selected[m], feedback.per_scn[m]);
      }
    });

    if (config_.audit_stride > 0 &&
        info.t % static_cast<int>(config_.audit_stride) == 0) {
      audit_now();
    }
  }
  // The slot's deadline measurement includes the update phase; feed it
  // to the ladder once the timers above have stopped.
  if (overload_.enabled()) {
    overload_.end_slot();
    publish_overload_telemetry();
  }
}

int LfscPolicy::audit_now() {
  int new_violations = 0;
  std::uint64_t checked = 0;
  for (std::size_t m = 0; m < scn_state_.size(); ++m) {
    if (quarantined_[m] != 0) continue;  // already contained, stop re-flagging
    ++audit_checks_;
    ++checked;
    auto& state = scn_state_[m];
    std::string err = audit_weight_table(
        std::span<const double>(weight_row(m), cells_), state.weight_scale);
    if (err.empty() && !state.last.p.empty()) {
      err = audit_probabilities(state.last.p, state.last.capped,
                                net_.capacity_c, state.last_solve_exact != 0);
    }
    if (err.empty()) {
      err = audit_multipliers(state.multipliers.qos(),
                              state.multipliers.resource(),
                              config_.lambda_max);
    }
    if (!err.empty()) {
      quarantined_[m] = 1;
      ++quarantine_count_;
      ++audit_violations_;
      ++new_violations;
      last_audit_detail_ = "SCN " + std::to_string(m) + ": " + err;
      LFSC_LOG_WARN << "lfsc.audit: quarantining " << last_audit_detail_
                    << " (SCN degraded to the greedy-only rung)";
    }
  }
  if (tel_audit_checks_ == nullptr) ensure_overload_telemetry();
  tel_audit_checks_->add(checked);
  if (new_violations > 0) {
    tel_audit_violations_->add(static_cast<std::uint64_t>(new_violations));
  }
  tel_audit_quarantined_->set(static_cast<double>(quarantine_count_));
  return new_violations;
}

bool LfscPolicy::enable_delayed_feedback(int max_delay) {
  if (last_slot_t_ != -1) {
    throw std::logic_error(
        "LfscPolicy: enable_delayed_feedback must precede the first slot");
  }
  if (max_delay < 1) return true;  // degenerate: everything is on time
  max_delay_ = max_delay;
  pending_.assign(static_cast<std::size_t>(max_delay) + 1, PendingSlot{});
  return true;
}

void LfscPolicy::observe_delayed(int origin_t, const SlotFeedback& feedback) {
  if (max_delay_ == 0) {
    throw std::logic_error(
        "LfscPolicy: observe_delayed without enable_delayed_feedback");
  }
  if (feedback.per_scn.size() != scn_state_.size()) {
    throw std::invalid_argument(
        "LfscPolicy: delayed feedback SCN count mismatch (got " +
        std::to_string(feedback.per_scn.size()) + ", want " +
        std::to_string(scn_state_.size()) + ")");
  }
  const auto& slot =
      pending_[static_cast<std::size_t>(origin_t) % pending_.size()];
  if (slot.t != origin_t) {
    throw std::logic_error(
        "LfscPolicy: delayed feedback outside the promised window");
  }
  for_each_scn([&](std::size_t m) {
    apply_delayed_scn(m, slot.per_scn[m], feedback.per_scn[m]);
  });
}

void LfscPolicy::apply_delayed_scn(std::size_t m, const PendingScn& pend,
                                   const std::vector<TaskFeedback>& arrived) {
  if (arrived.empty()) return;
  auto& state = scn_state_[m];
  tel_accepted_->add(arrived.size(), m);

  // Per-cell payoff sums over the arrived entries. Batches are at most
  // capacity_c items, so the linear cell scan beats any map.
  auto& cells = state.late_cells;
  auto& payoff = state.late_payoff;
  cells.clear();
  payoff.clear();
  for (const auto& f : arrived) {
    if (!feedback_sane(f)) {
      tel_rejected_->add(1, m);
      continue;
    }
    const PendingEntry* entry = nullptr;
    for (const auto& e : pend.entries) {
      if (e.local == f.local_index) {
        entry = &e;
        break;
      }
    }
    // No frozen entry: the task's cube was capped that slot, or the
    // feedback does not belong to this SCN's selection. Nothing to apply.
    if (entry == nullptr || !(entry->p > 0.0)) continue;
    const double g = f.q > 0.0 ? f.u * f.v / f.q : 0.0;
    // The same IPW term the on-time update would have added:
    // (g + lambda*v - lambda'*q/2) / (p * n_cell).
    const double s = (g + pend.lambda_qos * f.v -
                      pend.lambda_res * (f.q / 2.0)) *
                     entry->inv_n / entry->p;
    if (!std::isfinite(s)) continue;
    std::size_t slot_idx = cells.size();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i] == entry->cell) {
        slot_idx = i;
        break;
      }
    }
    if (slot_idx == cells.size()) {
      cells.push_back(entry->cell);
      payoff.push_back(0.0);
    }
    payoff[slot_idx] += s;
  }

  // Exponential update with the frozen eta_t: exp(eta*A)*exp(eta*B) =
  // exp(eta*(A+B)), so late batches compose exactly with the on-time
  // update. Multipliers are not touched (they stepped at observe(t)).
  // This path is rare and sparse, so it stays on shared scalar code
  // (exp_canonical — the exp_stream arithmetic, SIMD-mode invariant).
  double* w = weight_row(m);
  double* cprob = cache_active_ ? cell_prob_row(m) : nullptr;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::size_t cell = cells[i];
    const double exponent =
        std::clamp(pend.eta_t * payoff[i], -kMaxExponent, kMaxExponent);
    const double updated = std::max(w[cell] * simd::exp_canonical(exponent),
                                    state.weight_scale * kWeightFloor);
    w[cell] = updated;
    state.weight_scale = std::max(state.weight_scale, updated);
    if (cprob != nullptr) cprob[cell] = -1.0;  // cached p is stale
  }
  if (state.weight_scale > kScaleHigh) renormalize(m);
}

void LfscPolicy::renormalize(std::size_t m) {
  auto& state = scn_state_[m];
  double* w = weight_row(m);
  const simd::Kernels& kr = simd::active();
  double sum = 0.0;
  double max_weight = 0.0;
  kr.sum_max(w, cells_, &sum, &max_weight);
  if (max_weight > 0.0) {
    kr.renorm_floor(w, cells_, max_weight, kWeightFloor);
  }
  state.weight_scale = 1.0;
  // Every weight just moved: drop the explore-capped probability cache
  // (rare O(cells) path, so the unconditional sweep is in budget).
  double* cprob = cell_prob_row(m);
  std::fill(cprob, cprob + cells_, -1.0);
}

std::vector<double> LfscPolicy::weights(int scn) {
  const auto m = static_cast<std::size_t>(scn);
  renormalize(m);
  const double* w = weight_row(m);
  return std::vector<double>(w, w + cells_);
}

namespace {
constexpr std::string_view kStateMagic = "LFSC-STATE";
constexpr int kStateVersion = 1;
}  // namespace

void LfscPolicy::save(std::ostream& out) const {
  out << kStateMagic << ' ' << kStateVersion << '\n';
  out << scn_state_.size() << ' ' << partition_.cell_count() << '\n';
  out.precision(17);
  for (std::size_t m = 0; m < scn_state_.size(); ++m) {
    const auto& state = scn_state_[m];
    out << state.multipliers.qos() << ' ' << state.multipliers.resource();
    // Emit the normalized view (max == 1, floored) without mutating the
    // lazily-scaled internal table: same arithmetic as renormalize().
    const double* w = weight_row(m);
    double max_weight = 0.0;
    for (std::size_t cell = 0; cell < cells_; ++cell) {
      max_weight = std::max(max_weight, w[cell]);
    }
    for (std::size_t cell = 0; cell < cells_; ++cell) {
      out << ' '
          << (max_weight > 0.0 ? std::max(w[cell] / max_weight, kWeightFloor)
                               : w[cell]);
    }
    out << '\n';
  }
}

void LfscPolicy::load(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kStateMagic ||
      version != kStateVersion) {
    throw std::runtime_error("LfscPolicy::load: unrecognized state header");
  }
  std::size_t scns = 0, cells = 0;
  if (!(in >> scns >> cells) || scns != scn_state_.size() ||
      cells != partition_.cell_count()) {
    throw std::runtime_error(
        "LfscPolicy::load: state shape does not match this policy "
        "(SCN count or partition differs)");
  }
  for (std::size_t m = 0; m < scn_state_.size(); ++m) {
    auto& state = scn_state_[m];
    double qos = 0.0, res = 0.0;
    if (!(in >> qos >> res)) {
      throw std::runtime_error("LfscPolicy::load: truncated multipliers");
    }
    // Reject, don't repair: LagrangeMultipliers::restore projects a
    // non-finite value back to 0.0, which would silently reset learner
    // state a corrupted blob was supposed to warm-start.
    if (!std::isfinite(qos) || !std::isfinite(res)) {
      throw std::runtime_error(
          "LfscPolicy::load: non-finite Lagrange multiplier");
    }
    state.multipliers.restore(qos, res);
    double* w = weight_row(m);
    for (std::size_t cell = 0; cell < cells_; ++cell) {
      if (!(in >> w[cell]) || !(w[cell] > 0.0) || !std::isfinite(w[cell])) {
        throw std::runtime_error("LfscPolicy::load: bad weight value");
      }
    }
    renormalize(m);
  }
}

namespace {
/// Exact-image checkpoint blob version (independent of the portable
/// warm-start format above). v2 adds the overload-ladder block and, per
/// SCN, the quarantine flag, the exact-solve marker and the
/// explore-capped probability cache. The SoA refactor did not change
/// the format: rows serialize as the same length-C spans the AoS layout
/// emitted.
constexpr std::uint32_t kCheckpointVersion = 2;
}  // namespace

void LfscPolicy::save_checkpoint(std::string& out) const {
  BlobWriter w;
  w.u32(kCheckpointVersion);
  w.u32(static_cast<std::uint32_t>(scn_state_.size()));
  w.u32(static_cast<std::uint32_t>(partition_.cell_count()));
  w.i32(last_slot_t_);
  w.i32(max_delay_);
  // Degradation-ladder state: rung, recovery bookkeeping and the
  // overload.* counters, so a resumed run continues mid-degradation
  // exactly where the interrupted one left off.
  overload_.save(w);
  w.u8(static_cast<std::uint8_t>(slot_rung_));
  w.u64(audit_checks_);
  w.u64(audit_violations_);
  for (std::size_t m = 0; m < scn_state_.size(); ++m) {
    const auto& state = scn_state_[m];
    w.f64(state.weight_scale);
    w.f64(state.multipliers.qos());
    w.f64(state.multipliers.resource());
    // Raw-scaled weights, bit-exact: the normalized view save() emits
    // would perturb subsequent floor/renormalization arithmetic.
    w.f64_span(std::span<const double>(weight_row(m), cells_));
    const RngStreamState rng = state.rng.state();
    for (const auto word : rng.engine) w.u64(word);
    w.f64(rng.cached_normal);
    w.u8(rng.has_cached_normal ? 1 : 0);
    w.u8(quarantined_[m]);
    w.u8(state.last_solve_exact);
    w.f64_span(std::span<const double>(
        cell_prob_.data() + m * stride_, cells_));
  }
  if (max_delay_ > 0) {
    w.u32(static_cast<std::uint32_t>(pending_.size()));
    for (const auto& slot : pending_) {
      w.i32(slot.t);
      if (slot.t < 0) continue;
      for (const auto& pend : slot.per_scn) {
        w.f64(pend.eta_t);
        w.f64(pend.lambda_qos);
        w.f64(pend.lambda_res);
        w.u32(static_cast<std::uint32_t>(pend.entries.size()));
        for (const auto& e : pend.entries) {
          w.i32(e.local);
          w.u32(e.cell);
          w.f64(e.p);
          w.f64(e.inv_n);
        }
      }
    }
  }
  out += w.take();
}

void LfscPolicy::load_checkpoint(std::string_view blob) {
  BlobReader r(blob);
  const std::uint32_t version = r.u32();
  if (version != kCheckpointVersion) {
    throw std::runtime_error(
        "LfscPolicy: checkpoint blob version " + std::to_string(version) +
        " is not supported (this build reads version " +
        std::to_string(kCheckpointVersion) +
        "; restart the run or regenerate the checkpoint)");
  }
  if (r.u32() != scn_state_.size() || r.u32() != partition_.cell_count()) {
    throw std::runtime_error(
        "LfscPolicy: checkpoint shape does not match this policy "
        "(SCN count or partition differs)");
  }
  last_slot_t_ = r.i32();
  const int max_delay = r.i32();
  if (max_delay != max_delay_) {
    throw std::runtime_error(
        "LfscPolicy: checkpoint delay window does not match "
        "enable_delayed_feedback");
  }
  overload_.load(r);
  // Telemetry mirrors restart from the restored counters: the registry
  // rows themselves are restored by the harness, so re-adding the
  // pre-checkpoint history here would double-count.
  tel_prev_ = overload_.counters();
  const std::uint8_t slot_rung = r.u8();
  if (slot_rung > static_cast<std::uint8_t>(DegradeRung::kShed)) {
    throw std::runtime_error("LfscPolicy: corrupt checkpoint slot rung");
  }
  slot_rung_ = static_cast<DegradeRung>(slot_rung);
  audit_checks_ = r.u64();
  audit_violations_ = r.u64();
  quarantine_count_ = 0;
  for (std::size_t m = 0; m < scn_state_.size(); ++m) {
    auto& state = scn_state_[m];
    state.weight_scale = r.f64();
    const double qos = r.f64();
    const double res = r.f64();
    // Same reject-don't-repair rule as load(): restore() would project a
    // non-finite multiplier to 0.0 and mask the corruption.
    if (!std::isfinite(qos) || !std::isfinite(res)) {
      throw std::runtime_error(
          "LfscPolicy: non-finite checkpoint multiplier");
    }
    state.multipliers.restore(qos, res);
    const auto weights = r.f64_vec();
    if (weights.size() != cells_) {
      throw std::runtime_error("LfscPolicy: checkpoint weight table size");
    }
    std::copy(weights.begin(), weights.end(), weight_row(m));
    RngStreamState rng;
    for (auto& word : rng.engine) word = r.u64();
    rng.cached_normal = r.f64();
    rng.has_cached_normal = r.u8() != 0;
    state.rng.restore(rng);
    const std::uint8_t quarantined = r.u8();
    if (quarantined > 1) {
      throw std::runtime_error("LfscPolicy: corrupt checkpoint quarantine flag");
    }
    quarantined_[m] = quarantined;
    if (quarantined != 0) ++quarantine_count_;
    // A quarantined SCN's weight table is corrupt by definition — the
    // flag records exactly that, and the greedy-only serving path
    // sanitizes it — so strict validation applies only to live tables.
    if (quarantined == 0) {
      for (const double wv : weights) {
        if (!(wv > 0.0) || !std::isfinite(wv)) {
          throw std::runtime_error("LfscPolicy: corrupt checkpoint weight");
        }
      }
    }
    state.last_solve_exact = r.u8() != 0 ? 1 : 0;
    const auto cell_prob = r.f64_vec();
    if (cell_prob.size() != cells_) {
      throw std::runtime_error("LfscPolicy: checkpoint probability-cache size");
    }
    for (const double p : cell_prob) {
      // Valid cache entries are probabilities; -1 marks an invalidated
      // cell. Anything else is corruption.
      if (!std::isfinite(p) || p > 1.0 + 1e-9 || (p < 0.0 && p != -1.0)) {
        throw std::runtime_error(
            "LfscPolicy: corrupt checkpoint probability cache");
      }
    }
    std::copy(cell_prob.begin(), cell_prob.end(), cell_prob_row(m));
  }
  if (max_delay_ > 0) {
    if (r.u32() != pending_.size()) {
      throw std::runtime_error("LfscPolicy: checkpoint pending-ring size");
    }
    for (auto& slot : pending_) {
      slot.t = r.i32();
      slot.per_scn.assign(scn_state_.size(), PendingScn{});
      if (slot.t < 0) continue;
      for (auto& pend : slot.per_scn) {
        pend.eta_t = r.f64();
        pend.lambda_qos = r.f64();
        pend.lambda_res = r.f64();
        const auto n = r.u32();
        pend.entries.resize(n);
        for (auto& e : pend.entries) {
          e.local = r.i32();
          e.cell = r.u32();
          if (e.cell >= partition_.cell_count()) {
            throw std::runtime_error("LfscPolicy: corrupt checkpoint entry");
          }
          e.p = r.f64();
          e.inv_n = r.f64();
        }
      }
    }
  }
  if (!r.done()) {
    throw std::runtime_error("LfscPolicy: trailing bytes in checkpoint");
  }
}

void LfscPolicy::reset() {
  for (std::size_t m = 0; m < scn_state_.size(); ++m) {
    auto& state = scn_state_[m];
    std::fill(weight_row(m), weight_row(m) + cells_, 1.0);
    state.weight_scale = 1.0;
    state.multipliers.reset();
    state.last.p.clear();
    state.last.capped.clear();
    state.last_cells.clear();
    reset_slot_rows(m);
    std::fill(count_row(m), count_row(m) + cells_, 0u);
    double* cprob = cell_prob_row(m);
    std::fill(cprob, cprob + cells_, -1.0);
    state.last_solve_exact = 0;
    state.rng = RngStream(config_.seed,
                          kScnStreamBase + static_cast<std::uint64_t>(m));
  }
  for (auto& slot : pending_) {
    slot.t = -1;
    slot.per_scn.clear();
  }
  overload_.reset();
  slot_rung_ = DegradeRung::kFull;
  shard_shed_.store(false, std::memory_order_relaxed);
  probe_active_ = false;
  std::fill(quarantined_.begin(), quarantined_.end(), 0);
  quarantine_count_ = 0;
  audit_checks_ = 0;
  audit_violations_ = 0;
  last_audit_detail_.clear();
  tel_prev_ = OverloadCounters{};
  telemetry_.reset();
  last_slot_t_ = -1;
}

}  // namespace lfsc
