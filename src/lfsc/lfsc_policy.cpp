#include "lfsc/lfsc_policy.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "bandit/estimators.h"
#include "solver/greedy_assignment.h"

namespace lfsc {
namespace {

/// Keeps weight-update exponents representable: exp(±60) is ~1e26, far
/// from overflow, and the post-update max-normalization removes any
/// common scale anyway.
constexpr double kMaxExponent = 60.0;

}  // namespace

LfscPolicy::LfscPolicy(const NetworkConfig& net, LfscConfig config)
    : net_(net),
      config_(config),
      partition_(config.context_dims, config.parts_per_dim),
      gamma_(config.gamma > 0.0
                 ? config.gamma
                 : exp3m_default_gamma(config.expected_tasks_per_scn,
                                       static_cast<std::size_t>(net.capacity_c),
                                       config.horizon)),
      eta_lambda_(config.eta_lambda > 0.0
                      ? config.eta_lambda
                      : 10.0 / std::sqrt(static_cast<double>(
                                   std::max<std::size_t>(1, config.horizon)))),
      delta_(config.delta > 0.0
                 ? config.delta
                 : 1.0 / std::sqrt(static_cast<double>(
                             std::max<std::size_t>(1, config.horizon)))),
      rng_(config.seed, 0x1F5C) {
  net_.validate();
  if (gamma_ <= 0.0) gamma_ = 0.01;  // degenerate auto-formula inputs
  gamma_ = std::min(gamma_, 1.0);
  scn_state_.reserve(static_cast<std::size_t>(net_.num_scns));
  for (int m = 0; m < net_.num_scns; ++m) {
    scn_state_.emplace_back(partition_.cell_count(), eta_lambda_, delta_,
                            config_.lambda_max);
  }
}

void LfscPolicy::calculate_probabilities(std::size_t m, const SlotInfo& info) {
  auto& state = scn_state_[m];
  const auto& cover = info.coverage[m];

  // Alg. 2 lines 1-5: map each covered task's context to its hypercube
  // and look up the hypercube's weight as the task weight.
  state.last_cells.resize(cover.size());
  std::vector<double> task_weights(cover.size());
  for (std::size_t j = 0; j < cover.size(); ++j) {
    const auto& ctx = info.tasks[static_cast<std::size_t>(cover[j])].context;
    const std::size_t cell = partition_.index(ctx.normalized);
    state.last_cells[j] = cell;
    task_weights[j] = state.weights[cell];
  }

  // Alg. 2 lines 6-17: capped Exp3.M probabilities with c plays.
  const auto probs = exp3m_probabilities(
      task_weights, static_cast<std::size_t>(net_.capacity_c), gamma_);
  state.last_probs = probs.p;
  state.last_capped.assign(cover.size(), false);
  for (std::size_t j = 0; j < cover.size(); ++j) {
    state.last_capped[j] = probs.capped[j];
  }
}

Assignment LfscPolicy::select(const SlotInfo& info) {
  if (info.coverage.size() != scn_state_.size()) {
    throw std::invalid_argument("LfscPolicy: SCN count mismatch");
  }
  last_slot_t_ = info.t;

  for (std::size_t m = 0; m < scn_state_.size(); ++m) {
    calculate_probabilities(m, info);
  }

  if (!config_.coordinate_scns) {
    // Ablation: each SCN independently DepRounds its own marginals; tasks
    // may be duplicated across SCNs (constraint (1b) is intentionally
    // unprotected, which the ablation bench quantifies).
    Assignment out;
    out.selected.resize(scn_state_.size());
    for (std::size_t m = 0; m < scn_state_.size(); ++m) {
      const auto picks = dep_round(scn_state_[m].last_probs, rng_);
      auto& sel = out.selected[m];
      sel.reserve(picks.size());
      for (const auto j : picks) sel.push_back(static_cast<int>(j));
    }
    return out;
  }

  // Greedy collaborative assignment (Alg. 4) on probability-derived edge
  // weights. Default: Efraimidis-Spirakis keys u^(1/p) — top-c by key is
  // a probability-proportional random sample, so exploration survives the
  // deterministic greedy. `deterministic_edges` reproduces the literal
  // paper weighting w(m,i) ∝ p.
  std::vector<Edge> edges;
  std::size_t total = 0;
  for (const auto& cover : info.coverage) total += cover.size();
  edges.reserve(total);
  for (std::size_t m = 0; m < scn_state_.size(); ++m) {
    const auto& cover = info.coverage[m];
    const auto& probs = scn_state_[m].last_probs;
    for (std::size_t j = 0; j < cover.size(); ++j) {
      Edge e;
      e.scn = static_cast<int>(m);
      e.task = cover[j];
      e.local = static_cast<int>(j);
      const double p = probs[j];
      if (config_.deterministic_edges) {
        e.weight = p;
      } else if (p >= 1.0) {
        e.weight = 2.0;  // capped arms outrank every sampled key
      } else if (p > 0.0) {
        // key = u^(1/p): larger p stochastically dominates smaller p.
        const double u = std::max(rng_.uniform(), 1e-300);
        e.weight = std::exp(std::log(u) / p);
      } else {
        e.weight = 0.0;
      }
      edges.push_back(e);
    }
  }
  return greedy_select(static_cast<int>(scn_state_.size()),
                       static_cast<int>(info.tasks.size()), net_.capacity_c,
                       edges);
}

void LfscPolicy::update_scn(std::size_t m, const SlotInfo& info,
                            const std::vector<int>& selected_locals,
                            const std::vector<TaskFeedback>& feedback) {
  auto& state = scn_state_[m];
  const auto& cover = info.coverage[m];
  const std::size_t num_tasks = cover.size();
  if (num_tasks == 0) {
    // No coverage: still decay the multipliers toward feasibility
    // pressure from an empty slot (alpha unmet, no resource use).
    state.multipliers.update(0.0, 0.0, net_.qos_alpha, net_.resource_beta);
    return;
  }

  // Alg. 3 lines 1-8: IPW estimates per task, averaged per hypercube.
  IpwSlotAccumulator acc(partition_.cell_count());
  std::vector<char> selected(num_tasks, 0);
  std::vector<double> fb_u(num_tasks, 0.0), fb_v(num_tasks, 0.0),
      fb_q(num_tasks, 0.0);
  for (const auto& f : feedback) {
    const auto j = static_cast<std::size_t>(f.local_index);
    if (j >= num_tasks) throw std::out_of_range("LfscPolicy: bad feedback index");
    selected[j] = 1;
    fb_u[j] = f.u;
    fb_v[j] = f.v;
    fb_q[j] = f.q;
  }
  (void)selected_locals;  // feedback already carries the selected set

  double completed_sum = 0.0;
  double resource_sum = 0.0;
  for (std::size_t j = 0; j < num_tasks; ++j) {
    const bool is_selected = selected[j] != 0;
    const double p = state.last_probs.empty() ? 0.0 : state.last_probs[j];
    const double g = fb_q[j] > 0.0 ? fb_u[j] * fb_v[j] / fb_q[j] : 0.0;
    acc.add_task(state.last_cells[j], is_selected, p, g, fb_v[j],
                 fb_q[j] / 2.0);  // q normalized to [0,1] for the update
    if (is_selected) {
      completed_sum += fb_v[j];
      resource_sum += fb_q[j];
    }
  }

  // Per-slot learning rate: the Exp3.M exponent c*gamma/K adapted to the
  // slot's arm count, scaled by the configured eta_scale.
  const double eta_t = config_.eta_scale * gamma_ *
                       static_cast<double>(net_.capacity_c) /
                       static_cast<double>(num_tasks);
  const double lambda_qos =
      config_.use_lagrangian ? state.multipliers.qos() : 0.0;
  const double lambda_res =
      config_.use_lagrangian ? state.multipliers.resource() : 0.0;

  // A hypercube is "capped" this slot if any of its present tasks was in
  // S' (they share the same weight, so capping is a per-weight property).
  std::vector<char> cube_capped(partition_.cell_count(), 0);
  for (std::size_t j = 0; j < num_tasks; ++j) {
    if (state.last_capped[j]) cube_capped[state.last_cells[j]] = 1;
  }

  // Alg. 3 lines 9-14: exponential update for touched, uncapped cubes.
  double max_weight = 0.0;
  for (std::size_t cell = 0; cell < partition_.cell_count(); ++cell) {
    if (acc.touched(cell) && !cube_capped[cell]) {
      const double payoff = acc.estimate_g(cell) +
                            lambda_qos * acc.estimate_v(cell) -
                            lambda_res * acc.estimate_q(cell);
      const double exponent =
          std::clamp(eta_t * payoff, -kMaxExponent, kMaxExponent);
      state.weights[cell] *= std::exp(exponent);
    }
    max_weight = std::max(max_weight, state.weights[cell]);
  }
  // Scale invariance of Alg. 2 lets us renormalize so max == 1; this
  // keeps weights bounded over arbitrarily long horizons. A floor guards
  // strict positivity required by exp3m_probabilities.
  if (max_weight > 0.0) {
    constexpr double kFloor = 1e-12;
    for (auto& w : state.weights) {
      w = std::max(w / max_weight, kFloor);
    }
  }

  // Alg. 3 lines 15-17: dual ascent on the multipliers.
  state.multipliers.update(completed_sum, resource_sum, net_.qos_alpha,
                           net_.resource_beta);
}

void LfscPolicy::observe(const SlotInfo& info, const Assignment& assignment,
                         const SlotFeedback& feedback) {
  if (info.t != last_slot_t_) {
    throw std::logic_error("LfscPolicy: observe() without matching select()");
  }
  if (assignment.selected.size() != scn_state_.size() ||
      feedback.per_scn.size() != scn_state_.size()) {
    throw std::invalid_argument("LfscPolicy: feedback SCN count mismatch");
  }
  for (std::size_t m = 0; m < scn_state_.size(); ++m) {
    update_scn(m, info, assignment.selected[m], feedback.per_scn[m]);
  }
}

namespace {
constexpr std::string_view kStateMagic = "LFSC-STATE";
constexpr int kStateVersion = 1;
}  // namespace

void LfscPolicy::save(std::ostream& out) const {
  out << kStateMagic << ' ' << kStateVersion << '\n';
  out << scn_state_.size() << ' ' << partition_.cell_count() << '\n';
  out.precision(17);
  for (const auto& state : scn_state_) {
    out << state.multipliers.qos() << ' ' << state.multipliers.resource();
    for (const double w : state.weights) out << ' ' << w;
    out << '\n';
  }
}

void LfscPolicy::load(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kStateMagic ||
      version != kStateVersion) {
    throw std::runtime_error("LfscPolicy::load: unrecognized state header");
  }
  std::size_t scns = 0, cells = 0;
  if (!(in >> scns >> cells) || scns != scn_state_.size() ||
      cells != partition_.cell_count()) {
    throw std::runtime_error(
        "LfscPolicy::load: state shape does not match this policy "
        "(SCN count or partition differs)");
  }
  for (auto& state : scn_state_) {
    double qos = 0.0, res = 0.0;
    if (!(in >> qos >> res)) {
      throw std::runtime_error("LfscPolicy::load: truncated multipliers");
    }
    state.multipliers.restore(qos, res);
    for (auto& w : state.weights) {
      if (!(in >> w) || !(w > 0.0)) {
        throw std::runtime_error("LfscPolicy::load: bad weight value");
      }
    }
  }
}

void LfscPolicy::reset() {
  for (auto& state : scn_state_) {
    std::fill(state.weights.begin(), state.weights.end(), 1.0);
    state.multipliers.reset();
    state.last_probs.clear();
    state.last_capped.clear();
    state.last_cells.clear();
  }
  rng_ = RngStream(config_.seed, 0x1F5C);
  last_slot_t_ = -1;
}

}  // namespace lfsc
