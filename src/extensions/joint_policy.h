// Joint MBS + SCN offloading (paper future work, Sec. 6): "Tasks that do
// not restrict the latency but consume large amount of computing
// resources will be offloaded to MBS."
//
// JointMbsPolicy wraps any learning policy: tasks classified as
// MBS-bound (heavy input and large output — the resource-hungry,
// latency-tolerant profile) are hidden from the wrapped policy's
// coverage so SCN capacity concentrates on latency-sensitive work; the
// MBS fallback evaluator (extensions/mbs.h) then absorbs them. The
// wrapper translates local indices between the filtered and original
// views in both directions, so the inner learner is oblivious.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/policy.h"

namespace lfsc {

struct JointMbsConfig {
  /// Tasks with input size >= this (Mbit) are MBS-bound.
  double heavy_input_mbit = 16.0;

  /// ... provided their output is also small enough to tolerate the
  /// backhaul round trip (large outputs would congest the fiber).
  double max_output_mbit = 4.0;
};

class JointMbsPolicy final : public Policy {
 public:
  /// Takes ownership of the SCN-side learner.
  JointMbsPolicy(std::unique_ptr<Policy> inner, JointMbsConfig config = {});

  std::string_view name() const noexcept override { return name_; }
  Assignment select(const SlotInfo& info) override;
  void observe(const SlotInfo& info, const Assignment& assignment,
               const SlotFeedback& feedback) override;
  void reset() override;

  /// True when `task` would be routed to the MBS.
  bool is_mbs_bound(const Task& task) const noexcept;

  /// Number of tasks hidden from the inner policy in the last slot.
  std::size_t last_mbs_routed() const noexcept { return last_routed_; }

 private:
  /// Rebuilds the filtered view and the local-index maps for a slot.
  void build_filtered(const SlotInfo& info);

  std::unique_ptr<Policy> inner_;
  JointMbsConfig config_;
  std::string name_;

  // Per-slot translation state (select() fills, observe() consumes).
  SlotInfo filtered_;
  /// to_original_[m][filtered_local] == original_local
  std::vector<std::vector<int>> to_original_;
  /// to_filtered_[m][original_local] == filtered_local or -1 (hidden)
  std::vector<std::vector<int>> to_filtered_;
  std::size_t last_routed_ = 0;
  int last_slot_t_ = -1;
};

}  // namespace lfsc
