// MBS fallback processing (paper Sec. 3.3): "For those tasks that are not
// selected by SCNs, they can be offloaded and processed by MBS."
//
// The macrocell base station is modeled as a shared processor with its
// own per-slot capacity and a reward discount (it sits behind the fiber
// backhaul, so latency-sensitive value is partially lost). A task's MBS
// realization reuses the mean of its covering SCNs' realizations — the
// task itself is the same; only the processing venue changes.
#pragma once

#include <cstddef>

#include "sim/network.h"
#include "sim/task.h"

namespace lfsc {

struct MbsConfig {
  /// Tasks the MBS can absorb per slot (its servers are bigger than an
  /// SCN's but it serves the whole network).
  int capacity = 60;

  /// Multiplier on the compound reward of MBS-processed tasks, modeling
  /// the backhaul latency cost. In [0, 1].
  double reward_discount = 0.5;
};

struct MbsOutcome {
  double mbs_reward = 0.0;   ///< discounted reward earned at the MBS
  int mbs_tasks = 0;         ///< tasks absorbed by the MBS this slot
  int unserved_tasks = 0;    ///< tasks served by neither SCNs nor MBS
  int scn_tasks = 0;         ///< tasks the SCN assignment served
};

/// Evaluates what the MBS adds on top of an SCN assignment: unassigned
/// covered tasks are absorbed in decreasing expected compound reward
/// until capacity runs out. Uncovered tasks (no SCN in range) are also
/// eligible — the MBS reaches the whole network — but carry the same
/// discount and are valued by their slot-average realization.
MbsOutcome evaluate_mbs_fallback(const Slot& slot, const Assignment& assignment,
                                 const MbsConfig& config);

}  // namespace lfsc
