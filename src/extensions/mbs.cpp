#include "extensions/mbs.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace lfsc {

MbsOutcome evaluate_mbs_fallback(const Slot& slot, const Assignment& assignment,
                                 const MbsConfig& config) {
  if (config.capacity < 0 || config.reward_discount < 0.0 ||
      config.reward_discount > 1.0) {
    throw std::invalid_argument("evaluate_mbs_fallback: invalid config");
  }
  const auto num_tasks = slot.info.tasks.size();
  std::vector<bool> served(num_tasks, false);
  MbsOutcome outcome;
  for (std::size_t m = 0; m < assignment.selected.size(); ++m) {
    for (const int local : assignment.selected[m]) {
      const int task = slot.info.coverage[m][static_cast<std::size_t>(local)];
      served[static_cast<std::size_t>(task)] = true;
      ++outcome.scn_tasks;
    }
  }

  // A task's value at the MBS: slot-average compound reward over its
  // covering SCNs (same task, averaged channel view), discounted.
  struct Candidate {
    std::size_t task;
    double g;
  };
  std::vector<double> g_sum(num_tasks, 0.0);
  std::vector<int> g_count(num_tasks, 0);
  for (std::size_t m = 0; m < slot.info.coverage.size(); ++m) {
    const auto& cover = slot.info.coverage[m];
    for (std::size_t j = 0; j < cover.size(); ++j) {
      const double q = slot.real.q[m][j];
      const double g = q > 0.0 ? slot.real.u[m][j] * slot.real.v[m][j] / q : 0.0;
      g_sum[static_cast<std::size_t>(cover[j])] += g;
      ++g_count[static_cast<std::size_t>(cover[j])];
    }
  }
  std::vector<Candidate> spare;
  for (std::size_t i = 0; i < num_tasks; ++i) {
    if (served[i]) continue;
    // Tasks covered by no SCN have no realization; the MBS still serves
    // them but their value defaults to the slot's median-ish 0 — skip
    // them for reward purposes yet count them as served capacity-wise is
    // misleading, so value them at 0 only when it has spare capacity.
    const double g = g_count[i] > 0
                         ? g_sum[i] / static_cast<double>(g_count[i])
                         : 0.0;
    spare.push_back({i, g});
  }
  std::sort(spare.begin(), spare.end(), [](const Candidate& a,
                                           const Candidate& b) {
    if (a.g != b.g) return a.g > b.g;
    return a.task < b.task;
  });
  const auto take = std::min<std::size_t>(
      spare.size(), static_cast<std::size_t>(config.capacity));
  for (std::size_t k = 0; k < take; ++k) {
    outcome.mbs_reward += config.reward_discount * spare[k].g;
    ++outcome.mbs_tasks;
  }
  outcome.unserved_tasks = static_cast<int>(spare.size() - take);
  return outcome;
}

}  // namespace lfsc
