#include "extensions/joint_policy.h"

#include <stdexcept>

namespace lfsc {

JointMbsPolicy::JointMbsPolicy(std::unique_ptr<Policy> inner,
                               JointMbsConfig config)
    : inner_(std::move(inner)), config_(config) {
  if (!inner_) {
    throw std::invalid_argument("JointMbsPolicy: inner policy required");
  }
  name_ = "Joint(" + std::string(inner_->name()) + "+MBS)";
}

bool JointMbsPolicy::is_mbs_bound(const Task& task) const noexcept {
  return task.context.input_mbit >= config_.heavy_input_mbit &&
         task.context.output_mbit <= config_.max_output_mbit;
}

void JointMbsPolicy::build_filtered(const SlotInfo& info) {
  filtered_.t = info.t;
  filtered_.tasks = info.tasks;  // task vector stays intact; only the
                                 // coverage lists are thinned
  filtered_.coverage.assign(info.coverage.size(), {});
  to_original_.assign(info.coverage.size(), {});
  to_filtered_.assign(info.coverage.size(), {});
  last_routed_ = 0;

  std::vector<bool> routed(info.tasks.size(), false);
  for (std::size_t i = 0; i < info.tasks.size(); ++i) {
    routed[i] = is_mbs_bound(info.tasks[i]);
  }
  for (const bool r : routed) {
    if (r) ++last_routed_;
  }

  for (std::size_t m = 0; m < info.coverage.size(); ++m) {
    const auto& cover = info.coverage[m];
    auto& fcover = filtered_.coverage[m];
    auto& fwd = to_filtered_[m];
    auto& back = to_original_[m];
    fwd.assign(cover.size(), -1);
    for (std::size_t j = 0; j < cover.size(); ++j) {
      if (routed[static_cast<std::size_t>(cover[j])]) continue;
      fwd[j] = static_cast<int>(fcover.size());
      back.push_back(static_cast<int>(j));
      fcover.push_back(cover[j]);
    }
  }
}

Assignment JointMbsPolicy::select(const SlotInfo& info) {
  build_filtered(info);
  last_slot_t_ = info.t;
  const Assignment inner_assignment = inner_->select(filtered_);
  // Map the inner policy's filtered local indices back to the originals.
  Assignment out;
  out.selected.assign(info.coverage.size(), {});
  if (inner_assignment.selected.size() != info.coverage.size()) {
    throw std::logic_error("JointMbsPolicy: inner assignment shape mismatch");
  }
  for (std::size_t m = 0; m < out.selected.size(); ++m) {
    for (const int flocal : inner_assignment.selected[m]) {
      out.selected[m].push_back(
          to_original_[m][static_cast<std::size_t>(flocal)]);
    }
  }
  return out;
}

void JointMbsPolicy::observe(const SlotInfo& info,
                             const Assignment& assignment,
                             const SlotFeedback& feedback) {
  if (info.t != last_slot_t_) {
    throw std::logic_error("JointMbsPolicy: observe() without select()");
  }
  (void)assignment;
  // Translate feedback to the filtered view before forwarding.
  Assignment inner_assignment;
  inner_assignment.selected.assign(info.coverage.size(), {});
  SlotFeedback inner_feedback;
  inner_feedback.per_scn.resize(info.coverage.size());
  for (std::size_t m = 0; m < feedback.per_scn.size(); ++m) {
    for (const auto& f : feedback.per_scn[m]) {
      const int flocal =
          to_filtered_[m][static_cast<std::size_t>(f.local_index)];
      if (flocal < 0) {
        throw std::logic_error(
            "JointMbsPolicy: feedback for a task hidden from the learner");
      }
      TaskFeedback tf = f;
      tf.local_index = flocal;
      inner_feedback.per_scn[m].push_back(tf);
      inner_assignment.selected[m].push_back(flocal);
    }
  }
  inner_->observe(filtered_, inner_assignment, inner_feedback);
}

void JointMbsPolicy::reset() {
  inner_->reset();
  last_slot_t_ = -1;
  last_routed_ = 0;
}

}  // namespace lfsc
