// Persistent task re-submission (paper Sec. 3.3): "If some tasks need to
// execute over multiple slots, they can keep submitting offloading
// requests in the subsequent time slots."
//
// run_persistent_experiment() extends the standard loop: tasks not served
// in their arrival slot re-enter the next slot's task set (with the same
// context, covered by the same SCNs) until served or their patience runs
// out. The policy under test is unchanged — persistence is a property of
// the workload, which is exactly why it lives in the harness and not in
// a policy.
#pragma once

#include "harness/runner.h"
#include "sim/policy.h"
#include "sim/simulator.h"

namespace lfsc {

struct PersistenceConfig {
  /// Maximum number of slots a task re-submits after its arrival slot.
  int max_patience = 3;

  /// Stream id for the re-submitted tasks' fresh realizations.
  std::uint64_t realization_seed = 0xBEE5;
};

struct PersistentStats {
  long total_tasks = 0;    ///< unique tasks that entered the system
  long served_tasks = 0;   ///< eventually selected by some SCN
  long expired_tasks = 0;  ///< dropped after exhausting patience
  double mean_wait_slots = 0.0;  ///< among served tasks (0 = arrival slot)
  long max_backlog = 0;    ///< peak number of re-submitting tasks

  double served_fraction() const noexcept {
    return total_tasks > 0
               ? static_cast<double>(served_tasks) /
                     static_cast<double>(total_tasks)
               : 0.0;
  }
};

struct PersistentRunResult {
  SeriesRecorder series;
  PersistentStats stats;

  PersistentRunResult() : series("persistent") {}
};

/// Runs `policy` over `config.horizon` slots of `sim` with task
/// re-submission. Constraint validation matches run_experiment.
PersistentRunResult run_persistent_experiment(
    Simulator& sim, Policy& policy, const RunConfig& config,
    const PersistenceConfig& persistence = {});

}  // namespace lfsc
