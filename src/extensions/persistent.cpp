#include "extensions/persistent.h"

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace lfsc {
namespace {

struct Pending {
  Task task;
  std::vector<int> scns;  ///< SCNs that covered the task at arrival
  int born_t = 0;
  int age = 0;  ///< re-submissions so far
};

}  // namespace

PersistentRunResult run_persistent_experiment(
    Simulator& sim, Policy& policy, const RunConfig& config,
    const PersistenceConfig& persistence) {
  if (config.horizon <= 0) {
    throw std::invalid_argument("run_persistent_experiment: bad horizon");
  }
  if (persistence.max_patience < 0) {
    throw std::invalid_argument("run_persistent_experiment: bad patience");
  }
  if (policy.needs_realizations()) {
    // The injection below would need to rebuild omniscient slots; the
    // extension targets learning policies.
    throw std::invalid_argument(
        "run_persistent_experiment: omniscient policies unsupported");
  }

  PersistentRunResult result;
  auto& stats = result.stats;
  std::vector<Pending> backlog;
  double wait_sum = 0.0;
  const auto& net = sim.network();

  Slot slot;  // reused across the horizon (capacities stay warm)
  for (int t = 1; t <= config.horizon; ++t) {
    sim.generate_slot(t, slot);
    const std::size_t fresh_count = slot.info.tasks.size();
    stats.total_tasks += static_cast<long>(fresh_count);

    // Inject the backlog: same context and coverage, fresh realizations
    // (the channel and server state have moved on since arrival).
    RngStream redraw(persistence.realization_seed,
                     static_cast<std::uint64_t>(t));
    std::vector<std::size_t> backlog_task_index(backlog.size());
    for (std::size_t b = 0; b < backlog.size(); ++b) {
      const int new_index = static_cast<int>(slot.info.tasks.size());
      backlog_task_index[b] = static_cast<std::size_t>(new_index);
      slot.info.tasks.push_back(backlog[b].task);
      for (const int m : backlog[b].scns) {
        const auto mi = static_cast<std::size_t>(m);
        slot.info.coverage[mi].push_back(new_index);
        const auto d = sim.environment().draw(m, backlog[b].task.context,
                                              redraw);
        slot.real.u[mi].push_back(d.u);
        slot.real.v[mi].push_back(d.v);
        slot.real.q[mi].push_back(d.q);
      }
    }
    stats.max_backlog =
        std::max(stats.max_backlog, static_cast<long>(backlog.size()));

    const Assignment assignment = policy.select(slot.info);
    if (config.validate) {
      if (const auto error = validate_assignment(slot.info, assignment, net)) {
        throw std::logic_error("persistent run: invalid assignment at t=" +
                               std::to_string(t) + ": " + *error);
      }
    }
    result.series.add(evaluate_slot(slot, assignment, net));
    policy.observe(slot.info, assignment, make_feedback(slot, assignment));

    // Which global task indices were served?
    std::vector<bool> served(slot.info.tasks.size(), false);
    for (std::size_t m = 0; m < assignment.selected.size(); ++m) {
      for (const int local : assignment.selected[m]) {
        served[static_cast<std::size_t>(
            slot.info.coverage[m][static_cast<std::size_t>(local)])] = true;
      }
    }

    std::vector<Pending> next_backlog;
    // Backlog entries: served -> record wait; unserved -> age or expire.
    for (std::size_t b = 0; b < backlog.size(); ++b) {
      if (served[backlog_task_index[b]]) {
        ++stats.served_tasks;
        wait_sum += static_cast<double>(t - backlog[b].born_t);
      } else if (backlog[b].age + 1 >= persistence.max_patience) {
        ++stats.expired_tasks;
      } else {
        Pending p = std::move(backlog[b]);
        ++p.age;
        next_backlog.push_back(std::move(p));
      }
    }
    // Fresh tasks: served now, re-submit, or expire immediately when
    // patience is zero. A reverse coverage map keeps this linear in the
    // slot's total coverage size.
    std::vector<std::vector<int>> covering(fresh_count);
    for (std::size_t m = 0; m < slot.info.coverage.size(); ++m) {
      for (const int task : slot.info.coverage[m]) {
        if (static_cast<std::size_t>(task) < fresh_count) {
          covering[static_cast<std::size_t>(task)].push_back(
              static_cast<int>(m));
        }
      }
    }
    for (std::size_t i = 0; i < fresh_count; ++i) {
      if (served[i]) {
        ++stats.served_tasks;
        continue;
      }
      if (persistence.max_patience == 0 || covering[i].empty()) {
        ++stats.expired_tasks;  // out of patience or out of reach
        continue;
      }
      Pending p;
      p.task = slot.info.tasks[i];
      p.born_t = t;
      p.age = 0;
      p.scns = std::move(covering[i]);
      next_backlog.push_back(std::move(p));
    }
    backlog = std::move(next_backlog);
  }
  // Tasks still pending at the horizon count as expired (the run ended).
  stats.expired_tasks += static_cast<long>(backlog.size());
  stats.mean_wait_slots =
      stats.served_tasks > 0
          ? wait_sum / static_cast<double>(stats.served_tasks)
          : 0.0;
  return result;
}

}  // namespace lfsc
