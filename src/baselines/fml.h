// FML baseline (Sec. 5): "Fast Machine Learning", a context-aware online
// learner. Following the paper's description of its adaptation, each SCN
// learns per-hypercube reward estimates with a forced-exploration phase
// (hypercubes sampled fewer than ceil(K1 * t^z * ln t) times are explored
// first), then exploits the empirical mean; Alg. 4's greedy handles the
// multi-SCN coordination. Like vUCB it is constraint-unaware.
#pragma once

#include <string_view>
#include <vector>

#include "bandit/estimators.h"
#include "bandit/partition.h"
#include "sim/policy.h"

namespace lfsc {

struct FmlConfig {
  std::size_t context_dims = kContextDims;
  std::size_t parts_per_dim = 3;

  /// Exploration schedule: a hypercube is under-explored at slot t when
  /// N_f < ceil(k1 * t^z * ln(t+1)).
  double k1 = 0.25;
  double z = 0.25;
};

class FmlPolicy final : public Policy {
 public:
  FmlPolicy(const NetworkConfig& net, FmlConfig config = {});

  std::string_view name() const noexcept override { return "FML"; }
  Assignment select(const SlotInfo& info) override;
  void observe(const SlotInfo& info, const Assignment& assignment,
               const SlotFeedback& feedback) override;
  void reset() override;

  /// Exploration threshold in force at slot t (exposed for tests).
  double exploration_threshold(long t) const noexcept;

 private:
  NetworkConfig net_;
  FmlConfig config_;
  HypercubePartition partition_;
  std::vector<ArmStatsTable> stats_;
  long slots_seen_ = 0;
};

}  // namespace lfsc
