// LinUCB baseline — the contextual linear bandit of Li et al. ("A
// contextual-bandit approach to personalized news article recommendation",
// cited as [20] in the paper's related work). Instead of partitioning the
// context space, each SCN fits a ridge regression of the compound reward
// on the context features x = [1, ctx...] and scores each task with the
// optimistic index
//     theta^T x + alpha * sqrt(x^T A^{-1} x),
// where A is the regularized design matrix. Alg. 4's greedy handles the
// multi-SCN coordination; like vUCB/FML it is constraint-unaware.
//
// Included to probe whether the hypercube partition (LFSC's choice) or a
// parametric context model learns this workload faster — see
// bench/baseline_zoo.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "sim/policy.h"

namespace lfsc {

struct LinUcbConfig {
  double alpha = 0.6;   ///< exploration width multiplier
  double ridge = 1.0;   ///< L2 regularization on the design matrix
};

class LinUcbPolicy final : public Policy {
 public:
  LinUcbPolicy(const NetworkConfig& net, LinUcbConfig config = {});

  std::string_view name() const noexcept override { return "LinUCB"; }
  Assignment select(const SlotInfo& info) override;
  void observe(const SlotInfo& info, const Assignment& assignment,
               const SlotFeedback& feedback) override;
  void reset() override;

  /// Feature dimension (1 bias + kContextDims).
  static constexpr std::size_t kDim = 1 + kContextDims;

  /// Current ridge estimate theta for SCN m (for tests).
  std::vector<double> theta(int scn) const;

 private:
  struct ScnModel {
    // A is kDim x kDim row-major; b is kDim. theta is recomputed lazily.
    std::vector<double> a;
    std::vector<double> b;
    explicit ScnModel(double ridge);
  };

  static std::array<double, kDim> features(const TaskContext& ctx) noexcept;

  NetworkConfig net_;
  LinUcbConfig config_;
  std::vector<ScnModel> models_;
};

}  // namespace lfsc
