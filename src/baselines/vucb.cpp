#include "baselines/vucb.h"

#include <algorithm>
#include <limits>

#include "bandit/ucb.h"
#include "solver/greedy_assignment.h"

namespace lfsc {

VucbPolicy::VucbPolicy(const NetworkConfig& net, VucbConfig config)
    : net_(net),
      config_(config),
      partition_(config.context_dims, config.parts_per_dim) {
  net_.validate();
  stats_.reserve(static_cast<std::size_t>(net_.num_scns));
  for (int m = 0; m < net_.num_scns; ++m) {
    stats_.emplace_back(partition_.cell_count());
  }
}

Assignment VucbPolicy::select(const SlotInfo& info) {
  ++slots_seen_;
  // Greedy assignment cannot order +inf edges meaningfully, so unexplored
  // hypercubes get a finite bonus above any realizable index
  // (g <= 1, bonus <= sqrt(2 ln t)).
  const double unexplored =
      2.0 + std::sqrt(2.0 * std::log(static_cast<double>(
                std::max<long>(2, slots_seen_))));
  std::vector<Edge> edges;
  std::size_t total = 0;
  for (const auto& cover : info.coverage) total += cover.size();
  edges.reserve(total);
  for (std::size_t m = 0; m < info.coverage.size(); ++m) {
    const auto& cover = info.coverage[m];
    const auto& table = stats_[m];
    for (std::size_t j = 0; j < cover.size(); ++j) {
      const auto& ctx = info.tasks[static_cast<std::size_t>(cover[j])].context;
      const std::size_t cell = partition_.index(ctx.normalized);
      const double index = table[cell].pulls == 0
                               ? unexplored
                               : ucb_index(table[cell], slots_seen_);
      Edge e;
      e.scn = static_cast<int>(m);
      e.task = cover[j];
      e.local = static_cast<int>(j);
      e.weight = index;
      edges.push_back(e);
    }
  }
  return greedy_select(static_cast<int>(info.coverage.size()),
                       static_cast<int>(info.tasks.size()), net_.capacity_c,
                       edges);
}

void VucbPolicy::observe(const SlotInfo& info, const Assignment& assignment,
                         const SlotFeedback& feedback) {
  (void)assignment;
  for (std::size_t m = 0; m < feedback.per_scn.size(); ++m) {
    auto& table = stats_[m];
    const auto& cover = info.coverage[m];
    for (const auto& f : feedback.per_scn[m]) {
      const auto& ctx =
          info.tasks[static_cast<std::size_t>(
                         cover[static_cast<std::size_t>(f.local_index)])]
              .context;
      const std::size_t cell = partition_.index(ctx.normalized);
      table[cell].add(f.compound(), f.v, f.q);
    }
  }
}

void VucbPolicy::reset() {
  for (auto& table : stats_) table.reset();
  slots_seen_ = 0;
}

}  // namespace lfsc
