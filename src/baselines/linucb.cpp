#include "baselines/linucb.h"

#include <cmath>
#include <stdexcept>

#include "solver/greedy_assignment.h"

namespace lfsc {
namespace {

constexpr std::size_t kDim = LinUcbPolicy::kDim;

/// Solves A x = rhs for symmetric positive-definite A (kDim x kDim,
/// row-major) by Gaussian elimination with partial pivoting. A is small
/// (4x4), so this runs in nanoseconds.
std::array<double, kDim> solve(std::vector<double> a,
                               std::array<double, kDim> rhs) {
  for (std::size_t col = 0; col < kDim; ++col) {
    // Pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < kDim; ++row) {
      if (std::fabs(a[row * kDim + col]) > std::fabs(a[pivot * kDim + col])) {
        pivot = row;
      }
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < kDim; ++k) {
        std::swap(a[col * kDim + k], a[pivot * kDim + k]);
      }
      std::swap(rhs[col], rhs[pivot]);
    }
    const double diag = a[col * kDim + col];
    for (std::size_t row = col + 1; row < kDim; ++row) {
      const double factor = a[row * kDim + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < kDim; ++k) {
        a[row * kDim + k] -= factor * a[col * kDim + k];
      }
      rhs[row] -= factor * rhs[col];
    }
  }
  std::array<double, kDim> x{};
  for (std::size_t row = kDim; row-- > 0;) {
    double sum = rhs[row];
    for (std::size_t k = row + 1; k < kDim; ++k) {
      sum -= a[row * kDim + k] * x[k];
    }
    x[row] = sum / a[row * kDim + row];
  }
  return x;
}

}  // namespace

LinUcbPolicy::ScnModel::ScnModel(double ridge)
    : a(kDim * kDim, 0.0), b(kDim, 0.0) {
  for (std::size_t i = 0; i < kDim; ++i) a[i * kDim + i] = ridge;
}

LinUcbPolicy::LinUcbPolicy(const NetworkConfig& net, LinUcbConfig config)
    : net_(net), config_(config) {
  net_.validate();
  if (config_.ridge <= 0.0) {
    throw std::invalid_argument("LinUcbPolicy: ridge must be positive");
  }
  models_.assign(static_cast<std::size_t>(net_.num_scns),
                 ScnModel(config_.ridge));
}

std::array<double, LinUcbPolicy::kDim> LinUcbPolicy::features(
    const TaskContext& ctx) noexcept {
  std::array<double, kDim> x{};
  x[0] = 1.0;
  for (std::size_t d = 0; d < kContextDims; ++d) x[d + 1] = ctx.normalized[d];
  return x;
}

std::vector<double> LinUcbPolicy::theta(int scn) const {
  const auto& model = models_[static_cast<std::size_t>(scn)];
  std::array<double, kDim> b{};
  for (std::size_t i = 0; i < kDim; ++i) b[i] = model.b[i];
  const auto t = solve(model.a, b);
  return std::vector<double>(t.begin(), t.end());
}

Assignment LinUcbPolicy::select(const SlotInfo& info) {
  std::vector<Edge> edges;
  std::size_t total = 0;
  for (const auto& cover : info.coverage) total += cover.size();
  edges.reserve(total);
  for (std::size_t m = 0; m < info.coverage.size(); ++m) {
    const auto& model = models_[m];
    // theta = A^-1 b, computed once per (SCN, slot).
    std::array<double, kDim> b{};
    for (std::size_t i = 0; i < kDim; ++i) b[i] = model.b[i];
    const auto th = solve(model.a, b);
    const auto& cover = info.coverage[m];
    for (std::size_t j = 0; j < cover.size(); ++j) {
      const auto x = features(
          info.tasks[static_cast<std::size_t>(cover[j])].context);
      double mean = 0.0;
      for (std::size_t i = 0; i < kDim; ++i) mean += th[i] * x[i];
      // Confidence width: sqrt(x^T A^{-1} x) via one solve.
      const auto ainv_x = solve(model.a, x);
      double quad = 0.0;
      for (std::size_t i = 0; i < kDim; ++i) quad += x[i] * ainv_x[i];
      Edge e;
      e.scn = static_cast<int>(m);
      e.task = cover[j];
      e.local = static_cast<int>(j);
      e.weight = mean + config_.alpha * std::sqrt(std::max(0.0, quad));
      if (e.weight <= 0.0) e.weight = 1e-9;  // keep capacity usable
      edges.push_back(e);
    }
  }
  return greedy_select(static_cast<int>(info.coverage.size()),
                       static_cast<int>(info.tasks.size()), net_.capacity_c,
                       edges);
}

void LinUcbPolicy::observe(const SlotInfo& info, const Assignment& assignment,
                           const SlotFeedback& feedback) {
  (void)assignment;
  for (std::size_t m = 0; m < feedback.per_scn.size(); ++m) {
    auto& model = models_[m];
    const auto& cover = info.coverage[m];
    for (const auto& f : feedback.per_scn[m]) {
      const auto x = features(
          info.tasks[static_cast<std::size_t>(
                         cover[static_cast<std::size_t>(f.local_index)])]
              .context);
      const double g = f.compound();
      for (std::size_t i = 0; i < kDim; ++i) {
        for (std::size_t k = 0; k < kDim; ++k) {
          model.a[i * kDim + k] += x[i] * x[k];
        }
        model.b[i] += g * x[i];
      }
    }
  }
}

void LinUcbPolicy::reset() {
  models_.assign(static_cast<std::size_t>(net_.num_scns),
                 ScnModel(config_.ridge));
}

}  // namespace lfsc
