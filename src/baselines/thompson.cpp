#include "baselines/thompson.h"

#include <cmath>

#include "solver/greedy_assignment.h"

namespace lfsc {

ThompsonPolicy::ThompsonPolicy(const NetworkConfig& net, ThompsonConfig config)
    : net_(net),
      config_(config),
      partition_(config.context_dims, config.parts_per_dim),
      rng_(config.seed, 0x7503) {
  net_.validate();
  stats_.reserve(static_cast<std::size_t>(net_.num_scns));
  for (int m = 0; m < net_.num_scns; ++m) {
    stats_.emplace_back(partition_.cell_count());
  }
}

Assignment ThompsonPolicy::select(const SlotInfo& info) {
  std::vector<Edge> edges;
  std::size_t total = 0;
  for (const auto& cover : info.coverage) total += cover.size();
  edges.reserve(total);
  // One posterior draw per (SCN, cube) per slot; tasks share their
  // cube's draw so coordination compares cubes, not noise.
  std::vector<double> sampled(partition_.cell_count());
  for (std::size_t m = 0; m < info.coverage.size(); ++m) {
    const auto& table = stats_[m];
    for (std::size_t cell = 0; cell < sampled.size(); ++cell) {
      const auto& arm = table[cell];
      const double scale =
          config_.sigma0 / std::sqrt(static_cast<double>(arm.pulls + 1));
      sampled[cell] = rng_.normal(arm.mean_g, scale);
    }
    const auto& cover = info.coverage[m];
    for (std::size_t j = 0; j < cover.size(); ++j) {
      const auto& ctx = info.tasks[static_cast<std::size_t>(cover[j])].context;
      Edge e;
      e.scn = static_cast<int>(m);
      e.task = cover[j];
      e.local = static_cast<int>(j);
      e.weight = std::max(1e-9, sampled[partition_.index(ctx.normalized)]);
      edges.push_back(e);
    }
  }
  return greedy_select(static_cast<int>(info.coverage.size()),
                       static_cast<int>(info.tasks.size()), net_.capacity_c,
                       edges);
}

void ThompsonPolicy::observe(const SlotInfo& info, const Assignment& assignment,
                             const SlotFeedback& feedback) {
  (void)assignment;
  for (std::size_t m = 0; m < feedback.per_scn.size(); ++m) {
    auto& table = stats_[m];
    const auto& cover = info.coverage[m];
    for (const auto& f : feedback.per_scn[m]) {
      const auto& ctx =
          info.tasks[static_cast<std::size_t>(
                         cover[static_cast<std::size_t>(f.local_index)])]
              .context;
      table[partition_.index(ctx.normalized)].add(f.compound(), f.v, f.q);
    }
  }
}

void ThompsonPolicy::reset() {
  for (auto& table : stats_) table.reset();
  rng_ = RngStream(config_.seed, 0x7503);
}

}  // namespace lfsc
