// vUCB baseline (Sec. 5): a variant of UCB1 adapted to the small cell
// setting. Each SCN keeps, per hypercube f, the empirical mean compound
// reward and an exploration bonus sqrt(2 ln t / N_f); edge weights are
// the hypercube indices of each covered task and Alg. 4's greedy resolves
// the multi-SCN coordination. Constraint-unaware by construction — it
// fills all c slots with the highest-index tasks, which is exactly the
// behavior the paper's violation figures exhibit.
#pragma once

#include <string_view>
#include <vector>

#include "bandit/estimators.h"
#include "bandit/partition.h"
#include "sim/policy.h"

namespace lfsc {

struct VucbConfig {
  std::size_t context_dims = kContextDims;
  std::size_t parts_per_dim = 3;
};

class VucbPolicy final : public Policy {
 public:
  VucbPolicy(const NetworkConfig& net, VucbConfig config = {});

  std::string_view name() const noexcept override { return "vUCB"; }
  Assignment select(const SlotInfo& info) override;
  void observe(const SlotInfo& info, const Assignment& assignment,
               const SlotFeedback& feedback) override;
  void reset() override;

  const ArmStatsTable& stats(int scn) const {
    return stats_[static_cast<std::size_t>(scn)];
  }

 private:
  NetworkConfig net_;
  VucbConfig config_;
  HypercubePartition partition_;
  std::vector<ArmStatsTable> stats_;
  long slots_seen_ = 0;
};

}  // namespace lfsc
