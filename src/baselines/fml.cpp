#include "baselines/fml.h"

#include <algorithm>
#include <cmath>

#include "solver/greedy_assignment.h"

namespace lfsc {

FmlPolicy::FmlPolicy(const NetworkConfig& net, FmlConfig config)
    : net_(net),
      config_(config),
      partition_(config.context_dims, config.parts_per_dim) {
  net_.validate();
  stats_.reserve(static_cast<std::size_t>(net_.num_scns));
  for (int m = 0; m < net_.num_scns; ++m) {
    stats_.emplace_back(partition_.cell_count());
  }
}

double FmlPolicy::exploration_threshold(long t) const noexcept {
  const auto td = static_cast<double>(std::max<long>(1, t));
  return config_.k1 * std::pow(td, config_.z) * std::log(td + 1.0);
}

Assignment FmlPolicy::select(const SlotInfo& info) {
  ++slots_seen_;
  const double threshold = exploration_threshold(slots_seen_);
  // Exploration edges outrank all exploitation edges (mean g <= 1).
  constexpr double kExploreWeight = 2.0;
  std::vector<Edge> edges;
  std::size_t total = 0;
  for (const auto& cover : info.coverage) total += cover.size();
  edges.reserve(total);
  for (std::size_t m = 0; m < info.coverage.size(); ++m) {
    const auto& cover = info.coverage[m];
    const auto& table = stats_[m];
    for (std::size_t j = 0; j < cover.size(); ++j) {
      const auto& ctx = info.tasks[static_cast<std::size_t>(cover[j])].context;
      const std::size_t cell = partition_.index(ctx.normalized);
      const auto& arm = table[cell];
      Edge e;
      e.scn = static_cast<int>(m);
      e.task = cover[j];
      e.local = static_cast<int>(j);
      e.weight = static_cast<double>(arm.pulls) < threshold ? kExploreWeight
                                                            : arm.mean_g;
      // Exploitation of a zero-mean arm would produce weight 0, which the
      // greedy skips; nudge it so capacity is still used.
      if (e.weight <= 0.0) e.weight = 1e-6;
      edges.push_back(e);
    }
  }
  return greedy_select(static_cast<int>(info.coverage.size()),
                       static_cast<int>(info.tasks.size()), net_.capacity_c,
                       edges);
}

void FmlPolicy::observe(const SlotInfo& info, const Assignment& assignment,
                        const SlotFeedback& feedback) {
  (void)assignment;
  for (std::size_t m = 0; m < feedback.per_scn.size(); ++m) {
    auto& table = stats_[m];
    const auto& cover = info.coverage[m];
    for (const auto& f : feedback.per_scn[m]) {
      const auto& ctx =
          info.tasks[static_cast<std::size_t>(
                         cover[static_cast<std::size_t>(f.local_index)])]
              .context;
      table[partition_.index(ctx.normalized)].add(f.compound(), f.v, f.q);
    }
  }
}

void FmlPolicy::reset() {
  for (auto& table : stats_) table.reset();
  slots_seen_ = 0;
}

}  // namespace lfsc
