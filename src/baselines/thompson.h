// Thompson sampling baseline: Gaussian posterior sampling over the same
// per-(SCN, hypercube) arms LFSC uses. Each slot, every hypercube's
// index is a draw from N(mean_g, sigma0^2 / (pulls + 1)); tasks inherit
// their cube's sampled index and Alg. 4's greedy coordinates the SCNs.
// Randomized exploration without confidence bounds — the classic
// alternative to UCB, included for the baseline_zoo comparison.
// Constraint-unaware like vUCB/FML.
#pragma once

#include <string_view>
#include <vector>

#include "bandit/estimators.h"
#include "bandit/partition.h"
#include "common/rng.h"
#include "sim/policy.h"

namespace lfsc {

struct ThompsonConfig {
  std::size_t context_dims = kContextDims;
  std::size_t parts_per_dim = 3;
  double sigma0 = 0.5;  ///< prior scale of the sampling noise
  std::uint64_t seed = 77;
};

class ThompsonPolicy final : public Policy {
 public:
  ThompsonPolicy(const NetworkConfig& net, ThompsonConfig config = {});

  std::string_view name() const noexcept override { return "Thompson"; }
  Assignment select(const SlotInfo& info) override;
  void observe(const SlotInfo& info, const Assignment& assignment,
               const SlotFeedback& feedback) override;
  void reset() override;

 private:
  NetworkConfig net_;
  ThompsonConfig config_;
  HypercubePartition partition_;
  std::vector<ArmStatsTable> stats_;
  RngStream rng_;
};

}  // namespace lfsc
