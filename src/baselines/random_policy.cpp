#include "baselines/random_policy.h"

#include "solver/greedy_assignment.h"

namespace lfsc {

RandomPolicy::RandomPolicy(const NetworkConfig& net, std::uint64_t seed)
    : net_(net), seed_(seed), rng_(seed, 0xA11CE) {
  net_.validate();
}

Assignment RandomPolicy::select(const SlotInfo& info) {
  std::vector<Edge> edges;
  std::size_t total = 0;
  for (const auto& cover : info.coverage) total += cover.size();
  edges.reserve(total);
  for (std::size_t m = 0; m < info.coverage.size(); ++m) {
    const auto& cover = info.coverage[m];
    for (std::size_t j = 0; j < cover.size(); ++j) {
      Edge e;
      e.scn = static_cast<int>(m);
      e.task = cover[j];
      e.local = static_cast<int>(j);
      // Uniform keys: the greedy's descending sweep yields a uniformly
      // random conflict-free assignment filling every SCN to capacity.
      e.weight = rng_.uniform(1e-9, 1.0);
      edges.push_back(e);
    }
  }
  return greedy_select(static_cast<int>(info.coverage.size()),
                       static_cast<int>(info.tasks.size()), net_.capacity_c,
                       edges);
}

void RandomPolicy::reset() { rng_ = RngStream(seed_, 0xA11CE); }

}  // namespace lfsc
