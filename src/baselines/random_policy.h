// Random baseline (Sec. 5): picks c tasks per SCN uniformly at random,
// never offloading a task twice. Implemented as Alg. 4's greedy on
// uniform random edge weights, which is exactly a random conflict-free
// assignment.
#pragma once

#include <string_view>

#include "common/rng.h"
#include "sim/policy.h"

namespace lfsc {

class RandomPolicy final : public Policy {
 public:
  explicit RandomPolicy(const NetworkConfig& net, std::uint64_t seed = 99);

  std::string_view name() const noexcept override { return "Random"; }
  Assignment select(const SlotInfo& info) override;
  void reset() override;

 private:
  NetworkConfig net_;
  std::uint64_t seed_;
  RngStream rng_;
};

}  // namespace lfsc
