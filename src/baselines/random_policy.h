// Random baseline (Sec. 5): picks c tasks per SCN uniformly at random,
// never offloading a task twice. Implemented as Alg. 4's greedy on
// uniform random edge weights, which is exactly a random conflict-free
// assignment.
#pragma once

#include <stdexcept>
#include <string_view>

#include "common/binio.h"
#include "common/rng.h"
#include "sim/policy.h"

namespace lfsc {

class RandomPolicy final : public Policy {
 public:
  explicit RandomPolicy(const NetworkConfig& net, std::uint64_t seed = 99);

  std::string_view name() const noexcept override { return "Random"; }
  Assignment select(const SlotInfo& info) override;
  void reset() override;

  /// The RNG stream is the policy's only mutable state.
  bool supports_checkpoint() const noexcept override { return true; }
  void save_checkpoint(std::string& out) const override {
    BlobWriter w;
    const RngStreamState s = rng_.state();
    for (const auto word : s.engine) w.u64(word);
    w.f64(s.cached_normal);
    w.u8(s.has_cached_normal ? 1 : 0);
    out += w.take();
  }
  void load_checkpoint(std::string_view blob) override {
    BlobReader r(blob);
    RngStreamState s;
    for (auto& word : s.engine) word = r.u64();
    s.cached_normal = r.f64();
    s.has_cached_normal = r.u8() != 0;
    if (!r.done()) {
      throw std::runtime_error("RandomPolicy: trailing bytes in checkpoint");
    }
    rng_.restore(s);
  }

 private:
  NetworkConfig net_;
  std::uint64_t seed_;
  RngStream rng_;
};

}  // namespace lfsc
