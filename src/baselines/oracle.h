// Oracle baseline (Sec. 5): full a-priori knowledge of the slot's
// realizations; makes the best offloading decision under the system
// constraints and upper-bounds every learning algorithm.
//
// Per slot it runs a constrained greedy (reward-ordered, respecting
// capacity c, task uniqueness and the resource cap beta) followed by a
// QoS repair pass that adds high-likelihood tasks to SCNs whose expected
// completions fall short of alpha. tests/test_oracle.cpp cross-checks the
// greedy against the exact branch-and-bound solver on small instances.
#pragma once

#include <string_view>

#include "sim/policy.h"

namespace lfsc {

struct OracleConfig {
  /// When false, skips the QoS repair pass (pure reward maximization
  /// under (1a), (1b), (1d)); used when comparing against solve_exact.
  bool repair_qos = true;

  /// When false, ignores the resource cap too (pure (1a)+(1b) matching).
  bool respect_resource = true;
};

class OraclePolicy final : public Policy {
 public:
  explicit OraclePolicy(const NetworkConfig& net, OracleConfig config = {});

  std::string_view name() const noexcept override { return "Oracle"; }
  bool needs_realizations() const noexcept override { return true; }

  /// Never called by the harness for an omniscient policy; returns an
  /// empty assignment to satisfy the interface.
  Assignment select(const SlotInfo& info) override;

  Assignment select_omniscient(const Slot& slot) override;

  /// The Oracle is stateless per slot, so its checkpoint is empty and a
  /// resumed run is trivially bit-identical.
  bool supports_checkpoint() const noexcept override { return true; }
  void save_checkpoint(std::string& out) const override { (void)out; }
  void load_checkpoint(std::string_view blob) override {
    if (!blob.empty()) {
      throw std::runtime_error("OraclePolicy: unexpected checkpoint payload");
    }
  }

 private:
  NetworkConfig net_;
  OracleConfig config_;
};

}  // namespace lfsc
