#include "baselines/oracle.h"

#include <algorithm>
#include <vector>

#include "solver/bipartite.h"

namespace lfsc {

OraclePolicy::OraclePolicy(const NetworkConfig& net, OracleConfig config)
    : net_(net), config_(config) {
  net_.validate();
}

Assignment OraclePolicy::select(const SlotInfo& info) {
  Assignment empty;
  empty.selected.assign(info.coverage.size(), {});
  return empty;
}

Assignment OraclePolicy::select_omniscient(const Slot& slot) {
  const auto& info = slot.info;
  const auto& real = slot.real;
  const std::size_t num_scns = info.coverage.size();

  // Candidate edges weighted by the realized compound reward g = u*v/q.
  struct Candidate {
    int scn;
    int local;
    int task;
    double g;
    double v;
    double q;
  };
  std::vector<Candidate> candidates;
  for (std::size_t m = 0; m < num_scns; ++m) {
    const auto& cover = info.coverage[m];
    for (std::size_t j = 0; j < cover.size(); ++j) {
      const double q = real.q[m][j];
      const double g = q > 0.0 ? real.u[m][j] * real.v[m][j] / q : 0.0;
      candidates.push_back({static_cast<int>(m), static_cast<int>(j),
                            cover[j], g, real.v[m][j], q});
    }
  }

  Assignment out;
  out.selected.assign(num_scns, {});
  std::vector<int> load(num_scns, 0);
  std::vector<double> used(num_scns, 0.0);
  std::vector<double> completed(num_scns, 0.0);
  std::vector<bool> taken(info.tasks.size(), false);

  const auto try_take = [&](const Candidate& c) {
    const auto m = static_cast<std::size_t>(c.scn);
    if (load[m] >= net_.capacity_c) return false;
    if (taken[static_cast<std::size_t>(c.task)]) return false;
    if (config_.respect_resource && used[m] + c.q > net_.resource_beta) {
      return false;
    }
    out.selected[m].push_back(c.local);
    taken[static_cast<std::size_t>(c.task)] = true;
    ++load[m];
    used[m] += c.q;
    completed[m] += c.v;
    return true;
  };

  // Pass 1: reward-greedy under the hard constraints.
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (candidates[a].g != candidates[b].g) {
      return candidates[a].g > candidates[b].g;
    }
    if (candidates[a].scn != candidates[b].scn) {
      return candidates[a].scn < candidates[b].scn;
    }
    return candidates[a].task < candidates[b].task;
  });
  for (const auto idx : order) {
    if (candidates[idx].g <= 0.0) break;
    try_take(candidates[idx]);
  }

  // Pass 2 (QoS repair): SCNs short of alpha first add remaining tasks in
  // decreasing completion likelihood (cheap when capacity/resource room
  // exists), then swap low-likelihood selections for higher-likelihood
  // spares — pass 1 usually fills every slot, so swaps do the real work.
  if (config_.repair_qos) {
    std::vector<std::size_t> by_v = order;
    std::sort(by_v.begin(), by_v.end(), [&](std::size_t a, std::size_t b) {
      if (candidates[a].v != candidates[b].v) {
        return candidates[a].v > candidates[b].v;
      }
      return candidates[a].task < candidates[b].task;
    });
    for (const auto idx : by_v) {
      const auto m = static_cast<std::size_t>(candidates[idx].scn);
      if (completed[m] >= net_.qos_alpha) continue;
      try_take(candidates[idx]);
    }

    // Swap phase. For each SCN still short: replace its lowest-v selected
    // task with the highest-v unselected spare, as long as that raises
    // total completions and keeps the resource cap.
    for (std::size_t m = 0; m < num_scns; ++m) {
      if (completed[m] >= net_.qos_alpha) continue;
      // Index candidates of this SCN by local slot for O(1) lookup.
      std::vector<std::size_t> mine;
      for (std::size_t idx = 0; idx < candidates.size(); ++idx) {
        if (candidates[idx].scn == static_cast<int>(m)) mine.push_back(idx);
      }
      const auto is_selected = [&](const Candidate& c) {
        return std::find(out.selected[m].begin(), out.selected[m].end(),
                         c.local) != out.selected[m].end();
      };
      bool improved = true;
      while (completed[m] < net_.qos_alpha && improved) {
        improved = false;
        // Lowest-v currently selected at m.
        std::size_t worst = candidates.size();
        for (const auto idx : mine) {
          if (!is_selected(candidates[idx])) continue;
          if (worst == candidates.size() ||
              candidates[idx].v < candidates[worst].v) {
            worst = idx;
          }
        }
        if (worst == candidates.size()) break;
        // Best-v spare that fits after removing `worst`.
        std::size_t best = candidates.size();
        for (const auto idx : mine) {
          const auto& c = candidates[idx];
          if (is_selected(c) || taken[static_cast<std::size_t>(c.task)]) {
            continue;
          }
          if (config_.respect_resource &&
              used[m] - candidates[worst].q + c.q > net_.resource_beta) {
            continue;
          }
          if (best == candidates.size() || c.v > candidates[best].v) best = idx;
        }
        if (best == candidates.size() ||
            candidates[best].v <= candidates[worst].v) {
          break;  // no swap raises completions
        }
        // Execute the swap.
        auto& sel = out.selected[m];
        sel.erase(std::find(sel.begin(), sel.end(), candidates[worst].local));
        taken[static_cast<std::size_t>(candidates[worst].task)] = false;
        used[m] -= candidates[worst].q;
        completed[m] -= candidates[worst].v;
        --load[m];
        improved = try_take(candidates[best]);
      }
    }
  }

  for (auto& s : out.selected) std::sort(s.begin(), s.end());
  return out;
}

}  // namespace lfsc
