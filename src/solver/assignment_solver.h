// Pluggable assignment-solver zoo for the per-slot problem (1a)/(1b):
// every solver in src/solver registered behind one SolverKind switch, so
// the policy, the benches and the tools select an algorithm by name
// instead of hard-coding the call site.
//
//   auto    the hot-path cutover LfscPolicy uses today: stable radix at
//           >= 256 edges, packed merge heaps below, wide bucketed when
//           the task count exceeds the packed 16-bit field
//   greedy  the span-based Alg. 4 reference (counting sort + heaps)
//   packed  force greedy_select_packed (uint64 keys, merge heaps)
//   radix   force greedy_select_radix (stable LSD radix + linear consume)
//   flow    exact max-weight b-matching (min-cost max-flow)
//   bnb     exact branch and bound (optional resource constraint (1d))
//
// Every greedy variant produces the identical assignment (the cutover is
// purely a performance decision); the exact kinds trade wall time for
// optimality and exist for benches, tests and operators who want the
// gap measured in production shapes.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "solver/greedy_assignment.h"

namespace lfsc {

/// Solver selection. Numeric values are part of the serve-protocol and
/// flag surface ("solver=<name>") — do not reorder.
enum class SolverKind : std::uint8_t {
  kAuto = 0,
  kGreedy = 1,
  kPacked = 2,
  kRadix = 3,
  kFlow = 4,
  kBnb = 5,
};

/// Stable names for flags, live reconfig and telemetry/logs.
std::string_view solver_name(SolverKind kind) noexcept;

/// Parses a --solver / reconfig value ("auto", "greedy", "packed",
/// "radix", "flow", "bnb"). Returns false on an unknown name.
bool parse_solver(std::string_view name, SolverKind& out) noexcept;

/// Runs `kind` over a flat edge list and fills `out` (resized; inner
/// vectors keep their capacity). The greedy kinds stage the edges into
/// per-SCN buckets first (packed/radix require num_tasks <= 0x10000 and
/// fall back to the bucketed merge beyond that); the exact kinds call
/// the corresponding solver directly. Edge endpoints are validated by
/// the underlying solver. Used by the solver-zoo bench and tests; the
/// policy hot path keeps its pre-staged bucket dispatch.
void solve_assignment(SolverKind kind, int num_scns, int num_tasks,
                      int capacity_c, std::span<const Edge> edges,
                      Assignment& out, GreedySelectScratch& scratch);

}  // namespace lfsc
