// Anytime shift-swap local search over a feasible assignment (GAP-style
// ls_shiftswap): starting from the greedy solution, repeatedly
//   * insert  — assign an unassigned task to an SCN with residual
//               capacity when its edge weight is positive;
//   * shift   — move an assigned task to another covering SCN with
//               residual capacity;
//   * swap    — exchange two tasks across two saturated SCNs;
// accepting a move only when the total weight strictly improves, so the
// result is never worse than the input and constraints (1a)/(1b) are
// preserved by construction.
//
// Anytime contract: the caller supplies a deadline predicate; the
// improver polls it between passes and every `check_stride` candidate
// evaluations, stopping at a consistent assignment the moment it fires.
// With a null deadline the improver reads no clock at all — the policy
// only invokes it on budgeted slots, so the budget-unset slot path stays
// bit-identical to plain greedy (DESIGN.md §15).
//
// Determinism: tasks are visited ascending, candidates per task in SCN-
// ascending order, first improvement wins — for a fixed input and a
// deadline that never fires the result is a pure function of the edges.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "solver/bipartite.h"

namespace lfsc {

struct ShiftSwapOptions {
  /// Budget predicate: true = leftover budget exhausted, stop now.
  /// Null = no deadline (the improver then performs zero clock reads and
  /// runs until a full pass accepts no move or max_passes is reached).
  std::function<bool()> deadline;

  /// Upper bound on local-search passes over the task list.
  int max_passes = 16;

  /// Candidate evaluations between mid-pass deadline polls.
  int check_stride = 64;

  /// Optional per-SCN lock flags (e.g. audit-quarantined SCNs): a
  /// nonzero entry freezes that SCN — its current assignments stay
  /// exactly as the input and no task moves into it. Empty = no locks.
  std::span<const std::uint8_t> frozen_scns;
};

struct ShiftSwapStats {
  int passes = 0;    ///< completed passes over the task list
  int inserts = 0;   ///< unassigned task placed
  int shifts = 0;    ///< task moved to an SCN with residual capacity
  int swaps = 0;     ///< two tasks exchanged across saturated SCNs
  double gained = 0.0;      ///< total weight added (>= 0 always)
  bool deadline_hit = false;  ///< stopped by the budget, not convergence
  int moves() const noexcept { return inserts + shifts + swaps; }
};

/// Caller-owned buffers so repeated calls (one per budgeted slot)
/// allocate nothing once capacities are warm.
struct ShiftSwapScratch {
  std::vector<int> task_start;    ///< CSR offsets: candidates per task
  std::vector<int> cand_scn;      ///< candidate SCN, scn-ascending per task
  std::vector<int> cand_local;    ///< candidate local index
  std::vector<double> cand_weight;  ///< candidate edge weight
  std::vector<int> lookup_start;  ///< CSR offsets: edges per SCN
  std::vector<int> lookup_local;  ///< edge local, sorted per SCN
  std::vector<int> lookup_task;   ///< edge task, aligned with lookup_local
  std::vector<double> lookup_weight;  ///< edge weight, aligned
  std::vector<int> lookup_order;  ///< staging permutation scratch
  std::vector<int> cursor;        ///< counting-sort cursor scratch
  std::vector<int> load;          ///< accepted tasks per SCN
  std::vector<int> scn_of_task;   ///< current SCN of each task, -1 = none
  std::vector<int> local_of_task;   ///< local index of the current edge
  std::vector<double> weight_of_task;  ///< weight of the current edge
  std::vector<std::vector<int>> tasks_at;  ///< tasks per SCN, ascending
};

/// Improves `inout` in place. `inout` must be a feasible assignment over
/// `edges` (every selected (scn, local) names an edge, per-task
/// uniqueness and the capacity bound hold) — the greedy output always
/// is; a malformed assignment throws std::invalid_argument with the
/// input unmodified. Duplicate (scn, local) edges collapse to the
/// highest weight (the one the greedy would have accepted). When no
/// move is accepted `inout` is left byte-identical to the input.
ShiftSwapStats improve_shift_swap(int num_scns, int num_tasks, int capacity_c,
                                  std::span<const Edge> edges,
                                  Assignment& inout,
                                  const ShiftSwapOptions& opts,
                                  ShiftSwapScratch& scratch);

}  // namespace lfsc
