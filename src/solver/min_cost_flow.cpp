#include "solver/min_cost_flow.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <vector>

namespace lfsc {
namespace {

// Compact residual-graph representation: arcs stored in pairs, arc^1 is
// the reverse of arc.
struct Arc {
  int to = 0;
  int cap = 0;
  double cost = 0.0;
};

class ResidualGraph {
 public:
  explicit ResidualGraph(int num_nodes) : head_(num_nodes) {}

  void add_arc(int from, int to, int cap, double cost) {
    head_[static_cast<std::size_t>(from)].push_back(static_cast<int>(arcs_.size()));
    arcs_.push_back({to, cap, cost});
    head_[static_cast<std::size_t>(to)].push_back(static_cast<int>(arcs_.size()));
    arcs_.push_back({from, 0, -cost});
  }

  int num_nodes() const noexcept { return static_cast<int>(head_.size()); }
  const std::vector<int>& out(int node) const noexcept {
    return head_[static_cast<std::size_t>(node)];
  }
  Arc& arc(int id) noexcept { return arcs_[static_cast<std::size_t>(id)]; }
  const Arc& arc(int id) const noexcept {
    return arcs_[static_cast<std::size_t>(id)];
  }

 private:
  std::vector<std::vector<int>> head_;
  std::vector<Arc> arcs_;
};

// SPFA shortest path on the residual graph; returns false when the sink
// is unreachable. `parent_arc[v]` records the arc used to reach v.
bool spfa(const ResidualGraph& graph, int source, int sink,
          std::vector<double>& dist, std::vector<int>& parent_arc) {
  const auto n = static_cast<std::size_t>(graph.num_nodes());
  dist.assign(n, std::numeric_limits<double>::infinity());
  parent_arc.assign(n, -1);
  std::vector<bool> in_queue(n, false);
  std::deque<int> queue;
  dist[static_cast<std::size_t>(source)] = 0.0;
  queue.push_back(source);
  in_queue[static_cast<std::size_t>(source)] = true;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    in_queue[static_cast<std::size_t>(u)] = false;
    for (const int arc_id : graph.out(u)) {
      const Arc& a = graph.arc(arc_id);
      if (a.cap <= 0) continue;
      const double candidate = dist[static_cast<std::size_t>(u)] + a.cost;
      if (candidate + 1e-12 < dist[static_cast<std::size_t>(a.to)]) {
        dist[static_cast<std::size_t>(a.to)] = candidate;
        parent_arc[static_cast<std::size_t>(a.to)] = arc_id;
        if (!in_queue[static_cast<std::size_t>(a.to)]) {
          // SLF heuristic: promising nodes to the front.
          if (!queue.empty() &&
              candidate < dist[static_cast<std::size_t>(queue.front())]) {
            queue.push_front(a.to);
          } else {
            queue.push_back(a.to);
          }
          in_queue[static_cast<std::size_t>(a.to)] = true;
        }
      }
    }
  }
  return dist[static_cast<std::size_t>(sink)] <
         std::numeric_limits<double>::infinity();
}

}  // namespace

MaxWeightMatchingResult max_weight_b_matching(int num_scns, int num_tasks,
                                              int capacity_c,
                                              std::span<const Edge> edges) {
  if (num_scns < 0 || num_tasks < 0 || capacity_c < 0) {
    throw std::invalid_argument("max_weight_b_matching: negative sizes");
  }
  // Parse-don't-guess: every edge is validated up front — including the
  // weight <= 0 ones the solver will skip — so a malformed input fails
  // with one error before any graph is built, never mid-construction.
  for (const Edge& e : edges) {
    if (e.scn < 0 || e.scn >= num_scns || e.task < 0 || e.task >= num_tasks ||
        e.local < 0) {
      throw std::out_of_range("max_weight_b_matching: edge out of range");
    }
    if (!std::isfinite(e.weight)) {
      throw std::invalid_argument(
          "max_weight_b_matching: non-finite edge weight");
    }
  }
  MaxWeightMatchingResult result;
  result.assignment.selected.assign(static_cast<std::size_t>(num_scns), {});
  if (capacity_c == 0 || edges.empty() || num_tasks == 0) return result;

  // Node layout: source, SCNs, tasks, sink.
  const int source = 0;
  const int scn_base = 1;
  const int task_base = scn_base + num_scns;
  const int sink = task_base + num_tasks;
  ResidualGraph graph(sink + 1);

  for (int m = 0; m < num_scns; ++m) {
    graph.add_arc(source, scn_base + m, capacity_c, 0.0);
  }
  for (int i = 0; i < num_tasks; ++i) {
    graph.add_arc(task_base + i, sink, 1, 0.0);
  }
  // Remember which arc corresponds to which input edge so the final flow
  // can be translated back into an Assignment. Arcs are appended in
  // pairs, so the forward arc of the k-th added edge has a predictable id.
  std::vector<int> arc_of_edge(edges.size(), -1);
  int next_arc = 2 * (num_scns + num_tasks);
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const Edge& e = edges[k];
    if (e.weight <= 0.0) continue;  // can never improve the objective
    arc_of_edge[k] = next_arc;
    // Max weight == min cost with negated weights.
    graph.add_arc(scn_base + e.scn, task_base + e.task, 1, -e.weight);
    next_arc += 2;
  }

  std::vector<double> dist;
  std::vector<int> parent_arc;
  while (spfa(graph, source, sink, dist, parent_arc)) {
    // Each augmenting path carries exactly one unit (task->sink cap is 1).
    // Stop once the best path no longer has negative cost: further
    // augmentation would lower total weight.
    if (dist[static_cast<std::size_t>(sink)] >= -1e-12) break;
    for (int v = sink; v != source;) {
      const int arc_id = parent_arc[static_cast<std::size_t>(v)];
      graph.arc(arc_id).cap -= 1;
      graph.arc(arc_id ^ 1).cap += 1;
      v = graph.arc(arc_id ^ 1).to;
    }
    result.total_weight += -dist[static_cast<std::size_t>(sink)];
    ++result.augmentations;
  }

  // An edge is used when its forward arc has residual 0 (cap exhausted).
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const int arc_id = arc_of_edge[k];
    if (arc_id < 0) continue;
    if (graph.arc(arc_id).cap == 0) {
      result.assignment.selected[static_cast<std::size_t>(edges[k].scn)]
          .push_back(edges[k].local);
    }
  }
  for (auto& s : result.assignment.selected) std::sort(s.begin(), s.end());
  return result;
}

}  // namespace lfsc
