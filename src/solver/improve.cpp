#include "solver/improve.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lfsc {
namespace {

/// Sorted-ascending insert/erase keep each SCN's task list in a
/// canonical order, so the swap scan visits exchange partners
/// deterministically. Lists hold at most capacity_c entries; the linear
/// shuffle is cheaper than any ordered container at that size.
void insert_sorted(std::vector<int>& v, int value) {
  v.insert(std::lower_bound(v.begin(), v.end(), value), value);
}

void erase_sorted(std::vector<int>& v, int value) {
  v.erase(std::lower_bound(v.begin(), v.end(), value));
}

}  // namespace

ShiftSwapStats improve_shift_swap(int num_scns, int num_tasks, int capacity_c,
                                  std::span<const Edge> edges,
                                  Assignment& inout,
                                  const ShiftSwapOptions& opts,
                                  ShiftSwapScratch& scratch) {
  if (num_scns < 0 || num_tasks < 0 || capacity_c < 0) {
    throw std::invalid_argument("improve_shift_swap: negative sizes");
  }
  if (inout.selected.size() != static_cast<std::size_t>(num_scns)) {
    throw std::invalid_argument("improve_shift_swap: assignment SCN count");
  }
  if (!opts.frozen_scns.empty() &&
      opts.frozen_scns.size() != static_cast<std::size_t>(num_scns)) {
    throw std::invalid_argument("improve_shift_swap: frozen_scns size");
  }
  for (const Edge& e : edges) {
    if (e.scn < 0 || e.scn >= num_scns || e.task < 0 || e.task >= num_tasks ||
        e.local < 0) {
      throw std::out_of_range("improve_shift_swap: edge endpoint out of range");
    }
    if (!std::isfinite(e.weight)) {
      throw std::invalid_argument("improve_shift_swap: non-finite edge weight");
    }
  }

  ShiftSwapStats stats;
  const auto scns = static_cast<std::size_t>(num_scns);
  const auto tasks = static_cast<std::size_t>(num_tasks);
  const std::size_t num_edges = edges.size();

  // --- stage 1: per-SCN edge lookup, (local asc, weight desc) with
  // duplicate (scn, local) entries collapsed to the highest weight (the
  // edge the greedy would have accepted).
  auto& order = scratch.lookup_order;
  auto& cursor = scratch.cursor;
  auto& lstart = scratch.lookup_start;
  lstart.assign(scns + 1, 0);
  for (const Edge& e : edges) ++lstart[static_cast<std::size_t>(e.scn) + 1];
  for (std::size_t m = 0; m < scns; ++m) lstart[m + 1] += lstart[m];
  order.resize(num_edges);
  cursor.assign(lstart.begin(), lstart.end() - 1);
  for (std::size_t k = 0; k < num_edges; ++k) {
    order[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(edges[k].scn)]++)] =
        static_cast<int>(k);
  }
  auto& llocal = scratch.lookup_local;
  auto& ltask = scratch.lookup_task;
  auto& lweight = scratch.lookup_weight;
  llocal.clear();
  ltask.clear();
  lweight.clear();
  {
    std::size_t write_base = 0;
    for (std::size_t m = 0; m < scns; ++m) {
      const auto begin = order.begin() + lstart[m];
      const auto end = order.begin() + lstart[m + 1];
      std::sort(begin, end, [&](int a, int b) {
        const Edge& ea = edges[static_cast<std::size_t>(a)];
        const Edge& eb = edges[static_cast<std::size_t>(b)];
        if (ea.local != eb.local) return ea.local < eb.local;
        if (ea.weight != eb.weight) return ea.weight > eb.weight;
        return ea.task < eb.task;
      });
      lstart[m] = static_cast<int>(write_base);
      int prev_local = -1;
      for (auto it = begin; it != end; ++it) {
        const Edge& e = edges[static_cast<std::size_t>(*it)];
        if (e.local == prev_local) continue;  // duplicate: keep the best
        prev_local = e.local;
        llocal.push_back(e.local);
        ltask.push_back(e.task);
        lweight.push_back(e.weight);
        ++write_base;
      }
    }
    lstart[scns] = static_cast<int>(write_base);
  }

  // --- stage 2: candidate CSR per task, scn-ascending, with duplicate
  // (task, scn) pairs collapsed to (weight desc, local asc) best.
  auto& tstart = scratch.task_start;
  tstart.assign(tasks + 1, 0);
  for (const Edge& e : edges) ++tstart[static_cast<std::size_t>(e.task) + 1];
  for (std::size_t i = 0; i < tasks; ++i) tstart[i + 1] += tstart[i];
  order.resize(num_edges);
  cursor.assign(tstart.begin(), tstart.end() - 1);
  for (std::size_t k = 0; k < num_edges; ++k) {
    order[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(edges[k].task)]++)] =
        static_cast<int>(k);
  }
  auto& cscn = scratch.cand_scn;
  auto& clocal = scratch.cand_local;
  auto& cweight = scratch.cand_weight;
  cscn.clear();
  clocal.clear();
  cweight.clear();
  {
    std::size_t write_base = 0;
    for (std::size_t i = 0; i < tasks; ++i) {
      const auto begin = order.begin() + tstart[i];
      const auto end = order.begin() + tstart[i + 1];
      std::sort(begin, end, [&](int a, int b) {
        const Edge& ea = edges[static_cast<std::size_t>(a)];
        const Edge& eb = edges[static_cast<std::size_t>(b)];
        if (ea.scn != eb.scn) return ea.scn < eb.scn;
        if (ea.weight != eb.weight) return ea.weight > eb.weight;
        return ea.local < eb.local;
      });
      tstart[i] = static_cast<int>(write_base);
      int prev_scn = -1;
      for (auto it = begin; it != end; ++it) {
        const Edge& e = edges[static_cast<std::size_t>(*it)];
        if (e.scn == prev_scn) continue;  // duplicate: keep the best
        prev_scn = e.scn;
        cscn.push_back(e.scn);
        clocal.push_back(e.local);
        cweight.push_back(e.weight);
        ++write_base;
      }
    }
    tstart[tasks] = static_cast<int>(write_base);
  }

  // --- stage 3: parse the incoming assignment into task-indexed state,
  // rejecting anything infeasible before any mutation.
  auto& load = scratch.load;
  auto& scn_of = scratch.scn_of_task;
  auto& local_of = scratch.local_of_task;
  auto& weight_of = scratch.weight_of_task;
  auto& tasks_at = scratch.tasks_at;
  load.assign(scns, 0);
  scn_of.assign(tasks, -1);
  local_of.assign(tasks, -1);
  weight_of.assign(tasks, 0.0);
  tasks_at.resize(scns);
  for (auto& v : tasks_at) v.clear();
  for (std::size_t m = 0; m < scns; ++m) {
    const auto& sel = inout.selected[m];
    if (static_cast<int>(sel.size()) > capacity_c) {
      throw std::invalid_argument(
          "improve_shift_swap: assignment exceeds capacity (1a)");
    }
    for (const int local : sel) {
      const auto begin = llocal.begin() + lstart[m];
      const auto end = llocal.begin() + lstart[m + 1];
      const auto it = std::lower_bound(begin, end, local);
      if (it == end || *it != local) {
        throw std::invalid_argument(
            "improve_shift_swap: assignment references an unknown edge");
      }
      const auto idx = static_cast<std::size_t>(it - llocal.begin());
      const int task = ltask[idx];
      if (scn_of[static_cast<std::size_t>(task)] != -1) {
        throw std::invalid_argument(
            "improve_shift_swap: task assigned twice (1b)");
      }
      scn_of[static_cast<std::size_t>(task)] = static_cast<int>(m);
      local_of[static_cast<std::size_t>(task)] = local;
      weight_of[static_cast<std::size_t>(task)] = lweight[idx];
      ++load[m];
      tasks_at[m].push_back(task);
    }
    std::sort(tasks_at[m].begin(), tasks_at[m].end());
  }

  const auto frozen = [&](int m) {
    return !opts.frozen_scns.empty() &&
           opts.frozen_scns[static_cast<std::size_t>(m)] != 0;
  };
  const auto cross_weight = [&](int task, int scn, int& local_out,
                                double& weight_out) {
    const auto begin = cscn.begin() + tstart[static_cast<std::size_t>(task)];
    const auto end = cscn.begin() + tstart[static_cast<std::size_t>(task) + 1];
    const auto it = std::lower_bound(begin, end, scn);
    if (it == end || *it != scn) return false;
    const auto idx = static_cast<std::size_t>(it - cscn.begin());
    local_out = clocal[idx];
    weight_out = cweight[idx];
    return true;
  };

  // --- stage 4: first-improvement passes, deadline-polled.
  long long evals = 0;
  const long long stride =
      opts.check_stride > 0 ? opts.check_stride : 64;
  const auto budget_gone = [&]() {
    return opts.deadline && opts.deadline();
  };
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    if (budget_gone()) {
      stats.deadline_hit = true;
      break;
    }
    bool improved = false;
    for (int i = 0; i < num_tasks && !stats.deadline_hit; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      const int cur_m = scn_of[iu];
      if (cur_m >= 0 && frozen(cur_m)) continue;  // locked in place
      const double cur_w = cur_m >= 0 ? weight_of[iu] : 0.0;
      for (int k = tstart[iu]; k < tstart[iu + 1]; ++k) {
        if (++evals % stride == 0 && budget_gone()) {
          stats.deadline_hit = true;
          break;
        }
        const auto ku = static_cast<std::size_t>(k);
        const int m = cscn[ku];
        if (m == cur_m || frozen(m)) continue;
        const double w = cweight[ku];
        const auto mu = static_cast<std::size_t>(m);
        if (load[mu] < capacity_c) {
          if (w > cur_w) {
            // Insert / shift: strictly improving, capacity available.
            if (cur_m >= 0) {
              --load[static_cast<std::size_t>(cur_m)];
              erase_sorted(tasks_at[static_cast<std::size_t>(cur_m)], i);
              ++stats.shifts;
            } else {
              ++stats.inserts;
            }
            ++load[mu];
            insert_sorted(tasks_at[mu], i);
            scn_of[iu] = m;
            local_of[iu] = clocal[ku];
            weight_of[iu] = w;
            stats.gained += w - cur_w;
            improved = true;
            break;
          }
        } else if (cur_m >= 0) {
          // Swap: m is saturated — exchange with the partner whose
          // departure to cur_m yields the largest strictly positive
          // total gain (ties keep the lowest task index).
          double best_gain = 0.0;
          int best_b = -1;
          int best_b_local = -1;
          double best_b_weight = 0.0;
          for (const int b : tasks_at[mu]) {
            int b_local = 0;
            double b_cross = 0.0;
            if (!cross_weight(b, cur_m, b_local, b_cross)) continue;
            const double gain =
                (w + b_cross) -
                (cur_w + weight_of[static_cast<std::size_t>(b)]);
            if (gain > best_gain) {
              best_gain = gain;
              best_b = b;
              best_b_local = b_local;
              best_b_weight = b_cross;
            }
          }
          if (best_b >= 0) {
            const auto bu = static_cast<std::size_t>(best_b);
            erase_sorted(tasks_at[static_cast<std::size_t>(cur_m)], i);
            erase_sorted(tasks_at[mu], best_b);
            insert_sorted(tasks_at[mu], i);
            insert_sorted(tasks_at[static_cast<std::size_t>(cur_m)], best_b);
            scn_of[iu] = m;
            local_of[iu] = clocal[ku];
            weight_of[iu] = w;
            scn_of[bu] = cur_m;
            local_of[bu] = best_b_local;
            weight_of[bu] = best_b_weight;
            stats.gained += best_gain;
            ++stats.swaps;
            improved = true;
            break;
          }
        }
      }
    }
    if (stats.deadline_hit) break;
    ++stats.passes;
    if (!improved) break;
  }

  // --- stage 5: write back only when something moved, so the untouched
  // path returns the input byte-identical.
  if (stats.moves() > 0) {
    for (std::size_t m = 0; m < scns; ++m) {
      auto& sel = inout.selected[m];
      sel.clear();
      for (const int task : tasks_at[m]) {
        sel.push_back(local_of[static_cast<std::size_t>(task)]);
      }
      std::sort(sel.begin(), sel.end());
    }
  }
  return stats;
}

}  // namespace lfsc
