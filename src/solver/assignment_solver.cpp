#include "solver/assignment_solver.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "solver/branch_and_bound.h"
#include "solver/min_cost_flow.h"

namespace lfsc {
namespace {

/// Largest slot the packed kinds can represent (pack_greedy_entry keeps
/// the task index in 16 bits); bigger instances fall back to the wide
/// bucketed merge, exactly like the policy hot path.
constexpr std::size_t kPackedFieldLimit = 0x10000;

/// Edge count where kAuto switches from the packed merge heaps to the
/// stable radix (same threshold the policy uses).
constexpr std::size_t kAutoRadixMinEdges = 256;

struct Staged {
  std::vector<int> bucket_start;
  std::vector<std::uint64_t> packed;
};

/// Buckets the flat edge list per SCN with each bucket staged
/// tasks-ascending — the precondition under which radix and the packed
/// heaps produce the identical assignment. Weights are clamped to
/// [0, inf) at float precision (non-positive edges are never selected).
void stage_packed(int num_scns, std::span<const Edge> edges, Staged& staged) {
  auto& start = staged.bucket_start;
  start.assign(static_cast<std::size_t>(num_scns) + 1, 0);
  for (const Edge& e : edges) ++start[static_cast<std::size_t>(e.scn) + 1];
  for (int m = 0; m < num_scns; ++m) {
    start[static_cast<std::size_t>(m) + 1] += start[static_cast<std::size_t>(m)];
  }
  struct Item {
    int task;
    int local;
    float weight;
  };
  std::vector<std::vector<Item>> buckets(static_cast<std::size_t>(num_scns));
  for (const Edge& e : edges) {
    const float w =
        e.weight > 0.0 ? static_cast<float>(e.weight) : 0.0f;
    buckets[static_cast<std::size_t>(e.scn)].push_back({e.task, e.local, w});
  }
  staged.packed.clear();
  staged.packed.reserve(edges.size());
  for (auto& bucket : buckets) {
    std::sort(bucket.begin(), bucket.end(), [](const Item& a, const Item& b) {
      return a.task != b.task ? a.task < b.task : a.local < b.local;
    });
    for (const Item& it : bucket) {
      staged.packed.push_back(pack_greedy_entry(it.weight, it.task, it.local));
    }
  }
}

bool fits_packed(int num_tasks, std::span<const Edge> edges) {
  if (static_cast<std::size_t>(num_tasks) > kPackedFieldLimit) return false;
  for (const Edge& e : edges) {
    if (static_cast<std::size_t>(e.local) >= kPackedFieldLimit) return false;
  }
  return true;
}

}  // namespace

std::string_view solver_name(SolverKind kind) noexcept {
  switch (kind) {
    case SolverKind::kAuto:
      return "auto";
    case SolverKind::kGreedy:
      return "greedy";
    case SolverKind::kPacked:
      return "packed";
    case SolverKind::kRadix:
      return "radix";
    case SolverKind::kFlow:
      return "flow";
    case SolverKind::kBnb:
      return "bnb";
  }
  return "unknown";
}

bool parse_solver(std::string_view name, SolverKind& out) noexcept {
  if (name == "auto") {
    out = SolverKind::kAuto;
  } else if (name == "greedy") {
    out = SolverKind::kGreedy;
  } else if (name == "packed") {
    out = SolverKind::kPacked;
  } else if (name == "radix") {
    out = SolverKind::kRadix;
  } else if (name == "flow") {
    out = SolverKind::kFlow;
  } else if (name == "bnb") {
    out = SolverKind::kBnb;
  } else {
    return false;
  }
  return true;
}

void solve_assignment(SolverKind kind, int num_scns, int num_tasks,
                      int capacity_c, std::span<const Edge> edges,
                      Assignment& out, GreedySelectScratch& scratch) {
  switch (kind) {
    case SolverKind::kGreedy:
      greedy_select(num_scns, num_tasks, capacity_c, edges, out, scratch);
      return;
    case SolverKind::kAuto:
    case SolverKind::kPacked:
    case SolverKind::kRadix: {
      if (num_scns < 0 || num_tasks < 0 || capacity_c < 0) {
        throw std::invalid_argument("solve_assignment: negative sizes");
      }
      for (const Edge& e : edges) {
        if (e.scn < 0 || e.scn >= num_scns || e.task < 0 ||
            e.task >= num_tasks) {
          throw std::out_of_range(
              "solve_assignment: edge endpoint out of range");
        }
      }
      if (!fits_packed(num_tasks, edges)) {
        // Same fallback the policy applies: wider fields, same keys and
        // tie-break, identical assignment.
        greedy_select(num_scns, num_tasks, capacity_c, edges, out, scratch);
        return;
      }
      Staged staged;
      stage_packed(num_scns, edges, staged);
      const bool radix = kind == SolverKind::kRadix ||
                         (kind == SolverKind::kAuto &&
                          staged.packed.size() >= kAutoRadixMinEdges);
      if (radix) {
        greedy_select_radix(num_scns, num_tasks, capacity_c,
                            staged.bucket_start, staged.packed, out, scratch);
      } else {
        greedy_select_packed(num_scns, num_tasks, capacity_c,
                             staged.bucket_start, staged.packed, out, scratch);
      }
      return;
    }
    case SolverKind::kFlow: {
      auto result = max_weight_b_matching(num_scns, num_tasks, capacity_c,
                                          edges);
      out = std::move(result.assignment);
      return;
    }
    case SolverKind::kBnb: {
      ExactProblem problem;
      problem.num_scns = num_scns;
      problem.num_tasks = num_tasks;
      problem.capacity_c = capacity_c;
      problem.edges.assign(edges.begin(), edges.end());
      auto result = solve_exact(problem);
      out = std::move(result.assignment);
      return;
    }
  }
  throw std::invalid_argument("solve_assignment: unknown solver kind");
}

}  // namespace lfsc
