// Greedy collaborative assignment — Alg. 4 (GreedySelect).
//
// Repeatedly takes the highest-weight remaining edge (m, i); accepts it
// when SCN m still has capacity (< c tasks) and task i is unassigned.
// Proven (c+1)-approximate in the paper (Lemma 2); empirically much
// closer to optimal (see bench/ablation_greedy_vs_exact).
//
// Implementation: edges are bucketed per SCN (one counting-sort pass),
// each bucket is heapified (O(E) total) as a 4-ary max-heap, and the
// buckets are consumed through a k-way merge over num_scns cursors. The
// merge heap has one node per SCN, so advancing to the next edge in
// global order costs O(log S) on an L1-resident heap instead of
// O(log E) over the full edge list — and the moment an SCN saturates
// its entire remaining bucket is dropped without ever being visited.
// Total O(E + P log S) for P consumed edges. The merge consumes edges
// in exactly descending
// (weight, scn asc, task asc) order, i.e. the same order a global sort
// would visit, so the assignment is identical to the sort-based
// reference.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "solver/bipartite.h"

namespace lfsc {

/// Bucketed edge payload: the SCN is implicit in the bucket, so sorting
/// moves 16 bytes per element instead of a full 24-byte Edge.
struct GreedyBucketEntry {
  double weight;
  int task;
  int local;
};

/// Caller-owned bookkeeping buffers so the per-slot hot loop allocates
/// nothing once capacities are warm.
struct GreedySelectScratch {
  std::vector<int> load;       ///< C(m): accepted tasks per SCN
  std::vector<char> assigned;  ///< per-task assigned flag
  std::vector<int> bucket_start;  ///< per-SCN offsets into `bucketed`
  std::vector<int> cursor;        ///< per-SCN next-edge position
  std::vector<GreedyBucketEntry> bucketed;   ///< grouped by SCN, sorted desc
  std::vector<std::pair<double, int>> heap;  ///< merge heap: (weight, scn)
  std::vector<std::uint64_t> heap_packed;  ///< packed merge nodes
  std::vector<std::uint64_t> radix_keys;   ///< [w32 | entry index] keys
  std::vector<std::uint64_t> radix_tmp;    ///< radix ping-pong buffer
  std::vector<std::uint32_t> radix_scn;    ///< entry index -> SCN
};

/// Runs Alg. 4. `num_scns` and `num_tasks` size the bookkeeping arrays;
/// `capacity_c` is the per-SCN communication capacity. Edges with
/// non-positive weight are skipped (selecting them cannot help).
/// Ties are broken deterministically by (scn, task) so results do not
/// depend on the input edge order.
Assignment greedy_select(int num_scns, int num_tasks, int capacity_c,
                         std::span<const Edge> edges);

/// Allocation-free variant: fills `out` (resized; inner vectors keep
/// their capacity) and uses `scratch` for bookkeeping, reusing its
/// capacities across calls. `edges` is not modified. Same result as the
/// span overload, which wraps this one.
void greedy_select(int num_scns, int num_tasks, int capacity_c,
                   std::span<const Edge> edges, Assignment& out,
                   GreedySelectScratch& scratch);

/// Pre-bucketed variant for callers that already produce edges grouped
/// by SCN: `entries` holds bucket m in [bucket_start[m], bucket_start[m+1])
/// (`bucket_start` has num_scns + 1 offsets). Skips the validation,
/// counting-sort, and 24-byte Edge staging of the span overloads;
/// `entries` is heapified in place (destroyed). Endpoint validity is the
/// caller's contract: every task index must be in [0, num_tasks).
/// Produces the same assignment as the span overload fed the equivalent
/// flat edge list.
void greedy_select_bucketed(int num_scns, int num_tasks, int capacity_c,
                            std::span<const int> bucket_start,
                            std::span<GreedyBucketEntry> entries,
                            Assignment& out, GreedySelectScratch& scratch);

/// One bucketed edge packed into a single integer so the hot heaps
/// compare and move 8 bytes: [63:32] the IEEE bit pattern of the float
/// weight (orders like the value for weights >= 0), [31:16] 0xFFFF-task
/// (task ascending under the descending key order), [15:0] local index.
/// Requires weight >= 0 and task/local < 0x10000.
inline std::uint64_t pack_greedy_entry(float weight, int task,
                                       int local) noexcept {
  const auto bits = std::bit_cast<std::uint32_t>(weight);
  return (static_cast<std::uint64_t>(bits) << 32) |
         (static_cast<std::uint64_t>(0xFFFFu - static_cast<std::uint32_t>(
                                                   task)) << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(local));
}
inline int packed_entry_task(std::uint64_t e) noexcept {
  return static_cast<int>(0xFFFFu - ((e >> 16) & 0xFFFFu));
}
inline int packed_entry_local(std::uint64_t e) noexcept {
  return static_cast<int>(e & 0xFFFFu);
}

/// Packed-key variant of greedy_select_bucketed, for the slot hot path:
/// a single uint64 comparison per heap step replaces a double compare
/// plus tie-break, and the bucket heaps move half the bytes. Weights are
/// compared at float precision (extra float-level ties resolve by task
/// ascending, deterministically). Throws std::invalid_argument when
/// num_tasks exceeds 0x10000 (the packed task field). `entries` is
/// consumed in place.
void greedy_select_packed(int num_scns, int num_tasks, int capacity_c,
                          std::span<const int> bucket_start,
                          std::span<std::uint64_t> entries, Assignment& out,
                          GreedySelectScratch& scratch);

/// Radix variant of greedy_select_packed for edge counts where the heap
/// machinery's random access loses to sequential passes: a stable LSD
/// byte radix over the float weight bits (descending, uniform-byte
/// passes skipped, ping-pong scratch) followed by one linear consume
/// pass with the load/assigned checks. Stability makes ties resolve by
/// staging position, so the global order equals the heaps' (weight
/// desc, scn asc, task asc) contract **provided each bucket is staged
/// tasks-ascending** — the order the policy produces from its ascending
/// coverage lists. `entries` is read-only (not consumed). Same
/// assignment as greedy_select_packed under that precondition, and the
/// same num_tasks <= 0x10000 bound.
void greedy_select_radix(int num_scns, int num_tasks, int capacity_c,
                         std::span<const int> bucket_start,
                         std::span<const std::uint64_t> entries,
                         Assignment& out, GreedySelectScratch& scratch);

}  // namespace lfsc
