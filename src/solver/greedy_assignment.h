// Greedy collaborative assignment — Alg. 4 (GreedySelect).
//
// Repeatedly takes the highest-weight remaining edge (m, i); accepts it
// when SCN m still has capacity (< c tasks) and task i is unassigned.
// Proven (c+1)-approximate in the paper (Lemma 2); empirically much
// closer to optimal (see bench/ablation_greedy_vs_exact).
#pragma once

#include <span>
#include <vector>

#include "solver/bipartite.h"

namespace lfsc {

/// Runs Alg. 4. `num_scns` and `num_tasks` size the bookkeeping arrays;
/// `capacity_c` is the per-SCN communication capacity. Edges with
/// non-positive weight are skipped (selecting them cannot help).
/// Ties are broken deterministically by (scn, task) so results do not
/// depend on the input edge order.
Assignment greedy_select(int num_scns, int num_tasks, int capacity_c,
                         std::span<const Edge> edges);

}  // namespace lfsc
