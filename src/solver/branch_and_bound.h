// Exact solver for the per-slot offloading ILP on small instances:
//   maximize   sum w(m,i) x(m,i)
//   subject to (1a) per-SCN count <= c
//              (1b) per-task assignment <= 1
//              (1d) per-SCN resource sum q(m,i) x(m,i) <= beta (optional)
//
// Depth-first branch and bound over tasks ordered by best edge weight,
// with an optimistic suffix bound. Used to validate the greedy oracle and
// to measure Alg. 4's empirical approximation factor; not intended for
// the full 30-SCN / 2000-task slots (that is what the greedy is for).
#pragma once

#include <cstddef>
#include <vector>

#include "solver/bipartite.h"

namespace lfsc {

struct ExactProblem {
  int num_scns = 0;
  int num_tasks = 0;
  int capacity_c = 0;

  /// Per-SCN resource capacity; <= 0 disables constraint (1d).
  double resource_beta = 0.0;

  /// Candidate edges; `weight` is the (known) reward of the pair.
  std::vector<Edge> edges;

  /// Resource consumption per edge, aligned with `edges`. Empty means
  /// all-zero consumption (constraint 1d never binds).
  std::vector<double> edge_resource;
};

struct ExactResult {
  Assignment assignment;
  double total_weight = 0.0;
  std::size_t nodes_explored = 0;
  bool optimal = true;  ///< false when the node budget was exhausted
};

/// Solves `problem` exactly (up to `max_nodes` search nodes; beyond that
/// the best incumbent is returned with optimal=false).
ExactResult solve_exact(const ExactProblem& problem,
                        std::size_t max_nodes = 2'000'000);

}  // namespace lfsc
