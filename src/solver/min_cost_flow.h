// Exact maximum-weight b-matching via min-cost max-flow (successive
// shortest paths). Solves the relaxation of the per-slot problem with
// constraints (1a) capacity and (1b) uniqueness only — the LP-integral
// core that Alg. 4 approximates. Used by tests and the
// ablation_greedy_vs_exact bench to measure the greedy gap.
#pragma once

#include <span>

#include "solver/bipartite.h"

namespace lfsc {

struct MaxWeightMatchingResult {
  Assignment assignment;
  double total_weight = 0.0;
  int augmentations = 0;
};

/// Computes a maximum-total-weight assignment of tasks to SCNs with at
/// most `capacity_c` tasks per SCN and each task assigned at most once.
/// Edges with non-positive weight are never used. Runs successive
/// shortest augmenting paths (SPFA) and stops when no augmenting path
/// improves the objective, so partial matchings are allowed.
MaxWeightMatchingResult max_weight_b_matching(int num_scns, int num_tasks,
                                              int capacity_c,
                                              std::span<const Edge> edges);

}  // namespace lfsc
