#include "solver/greedy_assignment.h"

#include <algorithm>
#include <stdexcept>

namespace lfsc {

Assignment greedy_select(int num_scns, int num_tasks, int capacity_c,
                         std::span<const Edge> edges) {
  if (num_scns < 0 || num_tasks < 0 || capacity_c < 0) {
    throw std::invalid_argument("greedy_select: negative sizes");
  }
  Assignment out;
  out.selected.assign(static_cast<std::size_t>(num_scns), {});
  if (capacity_c == 0 || edges.empty()) return out;

  // Sort a copy descending by weight; deterministic tie-break.
  std::vector<Edge> order(edges.begin(), edges.end());
  std::sort(order.begin(), order.end(), [](const Edge& a, const Edge& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.scn != b.scn) return a.scn < b.scn;
    return a.task < b.task;
  });

  std::vector<int> load(static_cast<std::size_t>(num_scns), 0);  // C(m)
  std::vector<bool> assigned(static_cast<std::size_t>(num_tasks), false);
  for (const Edge& e : order) {
    if (e.weight <= 0.0) break;  // sorted: everything after is <= 0 too
    if (e.scn < 0 || e.scn >= num_scns || e.task < 0 || e.task >= num_tasks) {
      throw std::out_of_range("greedy_select: edge endpoint out of range");
    }
    auto& l = load[static_cast<std::size_t>(e.scn)];
    if (l >= capacity_c) continue;                          // Alg. 4 line 8
    if (assigned[static_cast<std::size_t>(e.task)]) continue;  // removed via line 6
    out.selected[static_cast<std::size_t>(e.scn)].push_back(e.local);
    assigned[static_cast<std::size_t>(e.task)] = true;
    ++l;
  }
  for (auto& s : out.selected) std::sort(s.begin(), s.end());
  return out;
}

}  // namespace lfsc
