#include "solver/greedy_assignment.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace lfsc {
namespace {
/// Within-bucket order: weight descending, task ascending. Restricted to
/// one SCN this equals the global (weight desc, scn asc, task asc) order
/// the sort-based reference uses.
inline bool bucket_before(const GreedyBucketEntry& a,
                          const GreedyBucketEntry& b) noexcept {
  // Bitwise | / & keep this branchless: the operands are random doubles,
  // so a short-circuit form mispredicts on nearly every comparison.
  return (a.weight > b.weight) |
         ((a.weight == b.weight) & (a.task < b.task));
}

/// Restores the max-heap property of a 4-ary bucket heap after h[i]
/// changed. Bucket heaps pop in exact bucket_before order, so the merge
/// consumes edges in the same global order a full sort would produce —
/// but only consumed edges pay the O(log) sift; a saturated SCN abandons
/// its remaining heap unvisited. 4-ary: the four children of a node span
/// one 64-byte cache line and the sift is half as deep as a binary heap.
void bucket_sift_down(GreedyBucketEntry* h, int n, int i) {
  const GreedyBucketEntry node = h[i];
  for (;;) {
    const int first = 4 * i + 1;
    if (first >= n) break;
    const int last = first + 4 < n ? first + 4 : n;
    int best = first;
    for (int c = first + 1; c < last; ++c) {
      best = bucket_before(h[c], h[best]) ? c : best;
    }
    if (!bucket_before(h[best], node)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = node;
}

/// Cross-bucket order for the merge heap nodes (weight, scn): higher
/// weight first, lower SCN on ties — completing the global tie-break
/// (each SCN appears at most once in the heap).
inline bool merge_before(const std::pair<double, int>& a,
                         const std::pair<double, int>& b) noexcept {
  return (a.first > b.first) | ((a.first == b.first) & (a.second < b.second));
}

/// Restores the max-heap property after h[i] changed (replace-top after
/// a cursor advance, or heapify during construction).
void sift_down(std::vector<std::pair<double, int>>& h, std::size_t i) {
  const std::size_t n = h.size();
  const auto node = h[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    // Clamp the sibling index instead of masking the compare: `&` does
    // not short-circuit, so the unclamped form reads h[n] when the node
    // has a single child. merge_before is irreflexive, so a clamped
    // self-compare never advances.
    const std::size_t sib = child + (child + 1 < n);
    child += merge_before(h[sib], h[child]);
    if (!merge_before(h[child], node)) break;
    h[i] = h[child];
    i = child;
  }
  h[i] = node;
}

/// Shared back half of every overload: heapify each bucket, then run the
/// k-way merge. `entries` is consumed in place; `start` has num_scns + 1
/// offsets. `out.selected` must already be resized and cleared, and
/// endpoints already validated.
void merge_buckets(int num_scns, int num_tasks, int capacity_c,
                   const int* start, GreedyBucketEntry* entries,
                   Assignment& out, GreedySelectScratch& scratch) {
  scratch.load.assign(static_cast<std::size_t>(num_scns), 0);
  scratch.assigned.assign(static_cast<std::size_t>(num_tasks), 0);

  // Heapify each bucket (O(E) total) instead of sorting it: only edges
  // the merge actually consumes pay a log-factor sift.
  auto& cursor = scratch.cursor;
  cursor.resize(static_cast<std::size_t>(num_scns));
  for (int m = 0; m < num_scns; ++m) {
    GreedyBucketEntry* h = entries + start[m];
    const int n = start[m + 1] - start[m];
    for (int i = (n + 2) / 4; i-- > 0;) bucket_sift_down(h, n, i);
    cursor[static_cast<std::size_t>(m)] = n;  // live heap length
  }

  // K-way merge: one (top weight, scn) node per non-empty bucket.
  auto& heap = scratch.heap;
  heap.clear();
  for (int m = 0; m < num_scns; ++m) {
    if (cursor[static_cast<std::size_t>(m)] > 0) {
      heap.emplace_back(entries[start[m]].weight, m);
    }
  }
  for (std::size_t i = heap.size() / 2; i-- > 0;) sift_down(heap, i);

  int assigned_tasks = 0;
  while (!heap.empty()) {
    const auto [weight, m] = heap.front();
    if (weight <= 0.0) break;  // every remaining edge is <= 0 too
    const auto ms = static_cast<std::size_t>(m);
    GreedyBucketEntry* h = entries + start[m];
    int& len = cursor[ms];
    const GreedyBucketEntry e = h[0];
    bool drop_bucket = false;
    if (!scratch.assigned[static_cast<std::size_t>(e.task)]) {  // line 6
      out.selected[ms].push_back(e.local);
      scratch.assigned[static_cast<std::size_t>(e.task)] = 1;
      // Saturated SCN (Alg. 4 line 8): its whole remaining bucket can
      // never be accepted — drop it from the merge without visiting it.
      if (++scratch.load[ms] == capacity_c) drop_bucket = true;
      if (++assigned_tasks == num_tasks) break;  // nothing left to assign
    }
    if (!drop_bucket && --len > 0) {
      h[0] = h[len];
      bucket_sift_down(h, len, 0);
      heap.front().first = h[0].weight;
      sift_down(heap, 0);
    } else {
      heap.front() = heap.back();
      heap.pop_back();
      if (!heap.empty()) sift_down(heap, 0);
    }
  }
  for (auto& s : out.selected) std::sort(s.begin(), s.end());
}

/// 4-ary sift for packed uint64 entries; one integer compare per
/// element. Branchless like bucket_sift_down.
void packed_sift_down(std::uint64_t* h, int n, int i) {
  const std::uint64_t node = h[i];
  for (;;) {
    const int first = 4 * i + 1;
    if (first >= n) break;
    const int last = first + 4 < n ? first + 4 : n;
    int best = first;
    for (int c = first + 1; c < last; ++c) {
      best = h[c] > h[best] ? c : best;
    }
    if (h[best] <= node) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = node;
}

/// Merge-heap node for the packed path: [63:32] float weight bits,
/// [31:0] ~scn — one uint64 whose plain integer descending order is
/// exactly (weight desc, scn asc), the cross-bucket tie-break contract.
inline std::uint64_t packed_merge_node(std::uint64_t entry, int scn) noexcept {
  return (entry & 0xFFFFFFFF00000000ull) |
         (0xFFFFFFFFull - static_cast<std::uint32_t>(scn));
}
inline int packed_merge_scn(std::uint64_t node) noexcept {
  return static_cast<int>(0xFFFFFFFFu -
                          static_cast<std::uint32_t>(node & 0xFFFFFFFFull));
}

void packed_merge_sift_down(std::vector<std::uint64_t>& h, std::size_t i) {
  const std::size_t n = h.size();
  const std::uint64_t node = h[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    // Clamped sibling, same as merge_sift_down: never reads h[n], and a
    // self-compare (x > x) never advances.
    const std::size_t sib = child + (child + 1 < n);
    child += h[sib] > h[child];
    if (h[child] <= node) break;
    h[i] = h[child];
    i = child;
  }
  h[i] = node;
}

}  // namespace

void greedy_select_packed(int num_scns, int num_tasks, int capacity_c,
                          std::span<const int> bucket_start,
                          std::span<std::uint64_t> entries, Assignment& out,
                          GreedySelectScratch& scratch) {
  if (num_scns < 0 || num_tasks < 0 || capacity_c < 0) {
    throw std::invalid_argument("greedy_select: negative sizes");
  }
  if (num_tasks > 0x10000) {
    throw std::invalid_argument(
        "greedy_select_packed: num_tasks exceeds the packed task field");
  }
  if (bucket_start.size() != static_cast<std::size_t>(num_scns) + 1) {
    throw std::invalid_argument("greedy_select: bucket_start size mismatch");
  }
  out.selected.resize(static_cast<std::size_t>(num_scns));
  for (auto& s : out.selected) s.clear();
  if (capacity_c == 0 || entries.empty()) return;
  const int* start = bucket_start.data();

  scratch.load.assign(static_cast<std::size_t>(num_scns), 0);
  scratch.assigned.assign(static_cast<std::size_t>(num_tasks), 0);

  auto& cursor = scratch.cursor;
  cursor.resize(static_cast<std::size_t>(num_scns));
  for (int m = 0; m < num_scns; ++m) {
    std::uint64_t* h = entries.data() + start[m];
    const int n = start[m + 1] - start[m];
    for (int i = (n + 2) / 4; i-- > 0;) packed_sift_down(h, n, i);
    cursor[static_cast<std::size_t>(m)] = n;
  }

  auto& heap = scratch.heap_packed;
  heap.clear();
  for (int m = 0; m < num_scns; ++m) {
    if (cursor[static_cast<std::size_t>(m)] > 0) {
      heap.push_back(
          packed_merge_node(entries[static_cast<std::size_t>(start[m])], m));
    }
  }
  for (std::size_t i = heap.size() / 2; i-- > 0;) packed_merge_sift_down(heap, i);

  int assigned_tasks = 0;
  while (!heap.empty()) {
    const std::uint64_t top = heap.front();
    if ((top >> 32) == 0) break;  // float weight bits zero: nothing > 0 left
    const int m = packed_merge_scn(top);
    const auto ms = static_cast<std::size_t>(m);
    std::uint64_t* h = entries.data() + start[m];
    int& len = cursor[ms];
    const std::uint64_t e = h[0];
    const auto task = static_cast<std::size_t>(packed_entry_task(e));
    bool drop_bucket = false;
    if (!scratch.assigned[task]) {
      out.selected[ms].push_back(packed_entry_local(e));
      scratch.assigned[task] = 1;
      if (++scratch.load[ms] == capacity_c) drop_bucket = true;
      if (++assigned_tasks == num_tasks) break;
    }
    if (!drop_bucket && --len > 0) {
      h[0] = h[len];
      packed_sift_down(h, len, 0);
      heap.front() = packed_merge_node(h[0], m);
      packed_merge_sift_down(heap, 0);
    } else {
      heap.front() = heap.back();
      heap.pop_back();
      if (!heap.empty()) packed_merge_sift_down(heap, 0);
    }
  }
  for (auto& s : out.selected) std::sort(s.begin(), s.end());
}

void greedy_select_radix(int num_scns, int num_tasks, int capacity_c,
                         std::span<const int> bucket_start,
                         std::span<const std::uint64_t> entries,
                         Assignment& out, GreedySelectScratch& scratch) {
  if (num_scns < 0 || num_tasks < 0 || capacity_c < 0) {
    throw std::invalid_argument("greedy_select: negative sizes");
  }
  if (num_tasks > 0x10000) {
    throw std::invalid_argument(
        "greedy_select_radix: num_tasks exceeds the packed task field");
  }
  if (bucket_start.size() != static_cast<std::size_t>(num_scns) + 1) {
    throw std::invalid_argument("greedy_select: bucket_start size mismatch");
  }
  out.selected.resize(static_cast<std::size_t>(num_scns));
  for (auto& s : out.selected) s.clear();
  if (capacity_c == 0 || entries.empty()) return;
  const std::size_t n = entries.size();
  const int* start = bucket_start.data();

  // idx -> SCN, derived from the bucket layout in one sequential pass.
  auto& scn_of = scratch.radix_scn;
  scn_of.resize(n);
  for (int m = 0; m < num_scns; ++m) {
    for (int i = start[m]; i < start[m + 1]; ++i) {
      scn_of[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(m);
    }
  }

  // Sort keys [weight bits | staging index]. Only the weight bytes are
  // radixed; the index rides along so ties keep staging order (which is
  // (scn asc, task asc) under the bucket-staging precondition) and the
  // consume pass can recover the entry.
  auto& keys = scratch.radix_keys;
  auto& tmp = scratch.radix_tmp;
  keys.resize(n);
  tmp.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = (entries[i] & 0xFFFFFFFF00000000ull) | i;
  }
  std::uint64_t* src = keys.data();
  std::uint64_t* dst = tmp.data();
  for (int shift = 32; shift < 64; shift += 8) {
    std::size_t hist[256] = {};
    for (std::size_t i = 0; i < n; ++i) ++hist[(src[i] >> shift) & 0xFF];
    // A byte all entries share sorts to the identity — skip the pass.
    // Common in practice: probability keys live in [0, 1], so the float
    // exponent byte varies far less than 256 ways.
    bool uniform = false;
    for (std::size_t b = 0; b < 256; ++b) {
      if (hist[b] == n) {
        uniform = true;
        break;
      }
    }
    if (uniform) continue;
    std::size_t ofs[256];
    std::size_t acc = 0;
    for (int b = 255; b >= 0; --b) {
      ofs[b] = acc;
      acc += hist[b];
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[ofs[(src[i] >> shift) & 0xFF]++] = src[i];
    }
    std::swap(src, dst);
  }

  // Linear consume in global order. Unlike the merge, a saturated SCN's
  // remaining entries are skipped one by one — the price of having no
  // per-bucket structure left to drop, paid as predictable sequential
  // reads.
  scratch.load.assign(static_cast<std::size_t>(num_scns), 0);
  scratch.assigned.assign(static_cast<std::size_t>(num_tasks), 0);
  int assigned_tasks = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = src[i];
    if ((k >> 32) == 0) break;  // float weight bits zero: nothing > 0 left
    const auto idx = static_cast<std::size_t>(k & 0xFFFFFFFFull);
    const std::uint64_t e = entries[idx];
    const auto task = static_cast<std::size_t>(packed_entry_task(e));
    if (scratch.assigned[task]) continue;
    const auto ms = static_cast<std::size_t>(scn_of[idx]);
    if (scratch.load[ms] == capacity_c) continue;
    out.selected[ms].push_back(packed_entry_local(e));
    scratch.assigned[task] = 1;
    ++scratch.load[ms];
    if (++assigned_tasks == num_tasks) break;
  }
  for (auto& s : out.selected) std::sort(s.begin(), s.end());
}

Assignment greedy_select(int num_scns, int num_tasks, int capacity_c,
                         std::span<const Edge> edges) {
  Assignment out;
  GreedySelectScratch scratch;
  greedy_select(num_scns, num_tasks, capacity_c, edges, out, scratch);
  return out;
}

void greedy_select(int num_scns, int num_tasks, int capacity_c,
                   std::span<const Edge> edges, Assignment& out,
                   GreedySelectScratch& scratch) {
  if (num_scns < 0 || num_tasks < 0 || capacity_c < 0) {
    throw std::invalid_argument("greedy_select: negative sizes");
  }
  out.selected.resize(static_cast<std::size_t>(num_scns));
  for (auto& s : out.selected) s.clear();
  if (capacity_c == 0 || edges.empty()) return;

  // Validate endpoints up front (one predictable pass) so the merge loop
  // below is branch-light and may terminate early.
  for (const Edge& e : edges) {
    if (e.scn < 0 || e.scn >= num_scns || e.task < 0 || e.task >= num_tasks) {
      throw std::out_of_range("greedy_select: edge endpoint out of range");
    }
  }

  // Counting-sort the edges into per-SCN buckets. Small per-SCN buckets
  // are far cheaper to maintain than one global heap over all edges, and
  // stay cache-resident.
  auto& start = scratch.bucket_start;
  start.assign(static_cast<std::size_t>(num_scns) + 1, 0);
  for (const Edge& e : edges) ++start[static_cast<std::size_t>(e.scn) + 1];
  for (int m = 0; m < num_scns; ++m) {
    start[static_cast<std::size_t>(m) + 1] +=
        start[static_cast<std::size_t>(m)];
  }
  auto& bucketed = scratch.bucketed;
  bucketed.resize(edges.size());
  auto& cursor = scratch.cursor;
  cursor.assign(start.begin(), start.end() - 1);
  for (const Edge& e : edges) {
    bucketed[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.scn)]++)] = {e.weight, e.task,
                                                       e.local};
  }
  merge_buckets(num_scns, num_tasks, capacity_c, start.data(), bucketed.data(),
                out, scratch);
}

void greedy_select_bucketed(int num_scns, int num_tasks, int capacity_c,
                            std::span<const int> bucket_start,
                            std::span<GreedyBucketEntry> entries,
                            Assignment& out, GreedySelectScratch& scratch) {
  if (num_scns < 0 || num_tasks < 0 || capacity_c < 0) {
    throw std::invalid_argument("greedy_select: negative sizes");
  }
  if (bucket_start.size() != static_cast<std::size_t>(num_scns) + 1) {
    throw std::invalid_argument("greedy_select: bucket_start size mismatch");
  }
  out.selected.resize(static_cast<std::size_t>(num_scns));
  for (auto& s : out.selected) s.clear();
  if (capacity_c == 0 || entries.empty()) return;
  merge_buckets(num_scns, num_tasks, capacity_c, bucket_start.data(),
                entries.data(), out, scratch);
}

}  // namespace lfsc
