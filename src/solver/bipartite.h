// The weighted bipartite SCN-task graph G = (M, D_t, E) of Sec. 4.2:
// an edge (m, i) exists when task i is within SCN m's coverage.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/task.h"

namespace lfsc {

struct Edge {
  int scn = 0;     ///< left vertex m
  int task = 0;    ///< right vertex: global task index within the slot
  int local = 0;   ///< position of `task` within coverage[scn]
  double weight = 0.0;
};

/// Builds the full edge list for a slot from per-(SCN, local) weights:
/// weight_of(m, local_index) -> double.
template <typename WeightFn>
std::vector<Edge> build_edges(const SlotInfo& info, WeightFn&& weight_of) {
  std::vector<Edge> edges;
  std::size_t total = 0;
  for (const auto& cover : info.coverage) total += cover.size();
  edges.reserve(total);
  for (std::size_t m = 0; m < info.coverage.size(); ++m) {
    const auto& cover = info.coverage[m];
    for (std::size_t j = 0; j < cover.size(); ++j) {
      Edge e;
      e.scn = static_cast<int>(m);
      e.task = cover[j];
      e.local = static_cast<int>(j);
      e.weight = weight_of(static_cast<int>(m), static_cast<int>(j));
      edges.push_back(e);
    }
  }
  return edges;
}

/// Total weight of an assignment under the same weight function.
template <typename WeightFn>
double assignment_weight(const Assignment& assignment, WeightFn&& weight_of) {
  double total = 0.0;
  for (std::size_t m = 0; m < assignment.selected.size(); ++m) {
    for (const int local : assignment.selected[m]) {
      total += weight_of(static_cast<int>(m), local);
    }
  }
  return total;
}

}  // namespace lfsc
