#include "solver/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lfsc {
namespace {

struct Option {
  int scn = 0;
  int local = 0;
  double weight = 0.0;
  double resource = 0.0;
};

struct SearchState {
  const std::vector<std::vector<Option>>* options = nullptr;
  const std::vector<double>* suffix_bound = nullptr;
  int capacity_c = 0;
  double resource_beta = 0.0;
  bool use_resource = false;
  std::size_t max_nodes = 0;

  std::vector<int> load;
  std::vector<double> used_resource;
  // chosen[t] = index into (*options)[t], or -1 for "skip task t".
  std::vector<int> chosen;
  std::vector<int> best_chosen;
  double current = 0.0;
  double best = 0.0;
  std::size_t nodes = 0;
  bool truncated = false;
};

void dfs(SearchState& state, std::size_t task) {
  if (state.nodes >= state.max_nodes) {
    state.truncated = true;
    return;
  }
  ++state.nodes;
  const auto& options = *state.options;
  if (task == options.size()) {
    if (state.current > state.best) {
      state.best = state.current;
      state.best_chosen = state.chosen;
    }
    return;
  }
  // Optimistic bound: finish current value with every remaining task's
  // best edge, ignoring capacity/resource coupling.
  if (state.current + (*state.suffix_bound)[task] <= state.best + 1e-12) {
    return;
  }
  // Branch on assigning this task to each feasible SCN, best edge first
  // (options are pre-sorted by weight descending).
  for (std::size_t k = 0; k < options[task].size(); ++k) {
    const Option& opt = options[task][k];
    auto& load = state.load[static_cast<std::size_t>(opt.scn)];
    auto& used = state.used_resource[static_cast<std::size_t>(opt.scn)];
    if (load >= state.capacity_c) continue;
    if (state.use_resource && used + opt.resource > state.resource_beta + 1e-12) {
      continue;
    }
    ++load;
    used += opt.resource;
    state.current += opt.weight;
    state.chosen[task] = static_cast<int>(k);
    dfs(state, task + 1);
    state.chosen[task] = -1;
    state.current -= opt.weight;
    used -= opt.resource;
    --load;
    if (state.truncated) return;
  }
  // Branch: skip the task.
  dfs(state, task + 1);
}

}  // namespace

ExactResult solve_exact(const ExactProblem& problem, std::size_t max_nodes) {
  if (problem.num_scns < 0 || problem.num_tasks < 0 || problem.capacity_c < 0) {
    throw std::invalid_argument("solve_exact: negative sizes");
  }
  if (!problem.edge_resource.empty() &&
      problem.edge_resource.size() != problem.edges.size()) {
    throw std::invalid_argument(
        "solve_exact: edge_resource size must match edges");
  }
  // Parse-don't-guess: every edge and resource entry is validated up
  // front — including the weight <= 0 edges the search drops — so a
  // malformed input fails with one error before any state is built.
  for (std::size_t k = 0; k < problem.edges.size(); ++k) {
    const Edge& e = problem.edges[k];
    if (e.scn < 0 || e.scn >= problem.num_scns || e.task < 0 ||
        e.task >= problem.num_tasks || e.local < 0) {
      throw std::out_of_range("solve_exact: edge endpoint out of range");
    }
    if (!std::isfinite(e.weight)) {
      throw std::invalid_argument("solve_exact: non-finite edge weight");
    }
    if (!problem.edge_resource.empty() &&
        !std::isfinite(problem.edge_resource[k])) {
      throw std::invalid_argument("solve_exact: non-finite edge resource");
    }
  }

  // Group candidate edges by task; drop non-positive weights.
  std::vector<std::vector<Option>> options(
      static_cast<std::size_t>(problem.num_tasks));
  for (std::size_t k = 0; k < problem.edges.size(); ++k) {
    const Edge& e = problem.edges[k];
    if (e.weight <= 0.0) continue;
    Option opt;
    opt.scn = e.scn;
    opt.local = e.local;
    opt.weight = e.weight;
    opt.resource = problem.edge_resource.empty() ? 0.0 : problem.edge_resource[k];
    options[static_cast<std::size_t>(e.task)].push_back(opt);
  }
  for (auto& opts : options) {
    std::sort(opts.begin(), opts.end(), [](const Option& a, const Option& b) {
      if (a.weight != b.weight) return a.weight > b.weight;
      return a.scn < b.scn;
    });
  }
  // Order tasks by their best option descending: strong incumbents early
  // make the suffix bound effective.
  std::vector<std::size_t> task_order(options.size());
  for (std::size_t i = 0; i < task_order.size(); ++i) task_order[i] = i;
  std::sort(task_order.begin(), task_order.end(),
            [&](std::size_t a, std::size_t b) {
              const double wa = options[a].empty() ? 0.0 : options[a][0].weight;
              const double wb = options[b].empty() ? 0.0 : options[b][0].weight;
              return wa > wb;
            });
  std::vector<std::vector<Option>> ordered;
  ordered.reserve(options.size());
  for (const auto t : task_order) ordered.push_back(std::move(options[t]));

  std::vector<double> suffix(ordered.size() + 1, 0.0);
  for (std::size_t i = ordered.size(); i-- > 0;) {
    suffix[i] = suffix[i + 1] + (ordered[i].empty() ? 0.0 : ordered[i][0].weight);
  }

  SearchState state;
  state.options = &ordered;
  state.suffix_bound = &suffix;
  state.capacity_c = problem.capacity_c;
  state.resource_beta = problem.resource_beta;
  state.use_resource = problem.resource_beta > 0.0 && !problem.edge_resource.empty();
  state.max_nodes = max_nodes;
  state.load.assign(static_cast<std::size_t>(problem.num_scns), 0);
  state.used_resource.assign(static_cast<std::size_t>(problem.num_scns), 0.0);
  state.chosen.assign(ordered.size(), -1);
  state.best_chosen.assign(ordered.size(), -1);
  dfs(state, 0);

  ExactResult result;
  result.assignment.selected.assign(static_cast<std::size_t>(problem.num_scns),
                                    {});
  for (std::size_t t = 0; t < ordered.size(); ++t) {
    const int k = state.best_chosen[t];
    if (k < 0) continue;
    const Option& opt = ordered[t][static_cast<std::size_t>(k)];
    result.assignment.selected[static_cast<std::size_t>(opt.scn)].push_back(
        opt.local);
  }
  for (auto& s : result.assignment.selected) std::sort(s.begin(), s.end());
  result.total_weight = state.best;
  result.nodes_explored = state.nodes;
  result.optimal = !state.truncated;
  return result;
}

}  // namespace lfsc
