// UCB1 index used by the vUCB baseline (Sec. 5):
//   index_f(t) = mean_g_f + sqrt(2 ln t / N_f(t)),
// with an infinite index for never-pulled hypercubes (forced exploration).
#pragma once

#include <cmath>
#include <limits>

#include "bandit/estimators.h"

namespace lfsc {

/// Computes the UCB index for an arm at (1-based) slot t.
inline double ucb_index(const ArmStats& stats, long t) noexcept {
  if (stats.pulls == 0) return std::numeric_limits<double>::infinity();
  const double bonus = std::sqrt(2.0 * std::log(static_cast<double>(t < 1 ? 1 : t)) /
                                 static_cast<double>(stats.pulls));
  return stats.mean_g + bonus;
}

}  // namespace lfsc
