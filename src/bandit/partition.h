// Uniform hypercube partition of the context space [0,1]^D (Alg. 1 init):
// each dimension is split into h_T equal parts, giving h_T^D hypercubes.
// Contexts map to cell indices in row-major order.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace lfsc {

class HypercubePartition {
 public:
  /// `dims` context dimensions, each split into `parts_per_dim` (h_T).
  /// Throws std::invalid_argument on zero arguments or if h_T^D overflows.
  HypercubePartition(std::size_t dims, std::size_t parts_per_dim);

  std::size_t dims() const noexcept { return dims_; }
  std::size_t parts_per_dim() const noexcept { return parts_; }

  /// Total number of hypercubes, h_T^D.
  std::size_t cell_count() const noexcept { return cell_count_; }

  /// Index of the hypercube containing `context`. Coordinates are clamped
  /// into [0,1]; the boundary 1.0 belongs to the last cell. Defined
  /// inline: the slot path calls this once per task and the call
  /// overhead was measurable.
  std::size_t index(std::span<const double> context) const noexcept {
    std::size_t idx = 0;
    const std::size_t used = std::min(context.size(), dims_);
    for (std::size_t d = 0; d < used; ++d) {
      const double coord = std::clamp(context[d], 0.0, 1.0);
      auto part = static_cast<std::size_t>(coord * static_cast<double>(parts_));
      part = std::min(part, parts_ - 1);  // coord == 1.0 -> last cell
      idx = idx * parts_ + part;
    }
    // Missing trailing dimensions (context shorter than dims) land in part 0.
    for (std::size_t d = used; d < dims_; ++d) idx *= parts_;
    return idx;
  }

  /// Center coordinates of cell `index` (inverse of index(); for tests
  /// and diagnostics).
  std::vector<double> cell_center(std::size_t index) const;

  /// Side length of each hypercube, 1/h_T.
  double cell_side() const noexcept {
    return 1.0 / static_cast<double>(parts_);
  }

 private:
  std::size_t dims_;
  std::size_t parts_;
  std::size_t cell_count_;
};

}  // namespace lfsc
