// Exp3.M-style probability machinery (Alg. 2 of the paper; Uchiya et al.,
// "Algorithms for adversarial bandit problems with multiple plays").
//
// Given per-arm weights w_i, a play budget k and exploration rate gamma,
// computes marginal selection probabilities
//     p_i = k * ((1-gamma) * w'_i / sum(w') + gamma / K)
// where w' are the *capped* weights: when one weight would push p_i above
// 1, a threshold epsilon_t is solved for (paper Alg. 2 lines 6-9), arms
// with w_i >= epsilon_t form the capped set S' and their temporary weight
// is clipped to epsilon_t — making their probability exactly 1.
//
// Also provides DepRound (dependent rounding) to sample a size-k subset
// whose inclusion marginals match p, used by the single-SCN variant and
// the no-coordination ablation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace lfsc {

struct CappedProbabilities {
  std::vector<double> p;  ///< per-arm marginal probability, in [0,1]
  /// Arm is in S' (probability clipped to 1). A byte vector, not
  /// vector<bool>: the hot loop assigns and reads it per arm per slot.
  std::vector<std::uint8_t> capped;
  std::size_t num_capped = 0;  ///< |S'|, the number of set bytes in `capped`
  double epsilon = 0.0;     ///< cap threshold; 0 when no capping occurred
  double weight_sum = 0.0;  ///< sum of capped weights, sum(w')
};

/// Reusable buffers for the epsilon fixed-point solve. Owned by the
/// caller so the per-slot hot loop performs no heap allocation once the
/// capacities are warm (they grow to the largest arm count seen).
struct Exp3mScratch {
  std::vector<double> heap;  ///< weight copy, consumed as a 4-ary max-heap
  std::vector<double> top;   ///< the k+1 largest weights, sorted descending
  std::vector<double> tail;  ///< tail[s] = total - sum(top[0..s))
  /// Max-normalized weight copy, populated only on the numeric-guard
  /// path (sum overflow / denormal maximum); empty in steady state.
  std::vector<double> scaled;
};

/// Computes the capped probability vector. Requirements: all weights
/// strictly positive and finite, k >= 1, gamma in [0, 1].
/// When the number of arms K <= k every arm gets p = 1 (and is marked
/// capped: there is nothing to learn from a forced selection).
///
/// Numeric guard: when the weight scale is degenerate — the sum
/// overflows to infinity, or the largest weight is so small that the
/// normalizing reciprocal would overflow — the weights are re-expressed
/// relative to their maximum (probabilities are scale-invariant) with a
/// 1e-12 relative floor, so the returned marginals are always finite,
/// in [0, 1], and sum to k.
CappedProbabilities exp3m_probabilities(std::span<const double> weights,
                                        std::size_t k, double gamma);

/// Allocation-free variant: writes the result into `out` and uses
/// `scratch` for the fixed-point solve, reusing both objects' vector
/// capacities across calls. Semantics identical to the value-returning
/// overload (which is now a thin wrapper over this one).
void exp3m_probabilities(std::span<const double> weights, std::size_t k,
                         double gamma, CappedProbabilities& out,
                         Exp3mScratch& scratch);

/// Scratch for the cell-grouped solve below.
struct Exp3mGroupedScratch {
  std::vector<std::uint32_t> order;  ///< group indices sorted by value desc
  std::vector<double> suffix;  ///< suffix weighted sums over sorted groups
  std::vector<double> scaled;  ///< numeric-guard normalized copy
};

/// Result of the cell-grouped epsilon solve. `epsilon`, `num_capped`
/// and `weight_sum` have the same meaning as in CappedProbabilities
/// (num_capped counts *arms*, not groups). `scale`/`base` are the
/// loop-invariant marginal terms: p_i = clamp(scale * w'_i + base, 0, 1).
/// When `all_capped` (K <= k) every arm has p = 1; when `uniform`
/// (gamma >= 1) every arm has p = k/K (precomputed in `base`, scale 0).
struct Exp3mGroupedResult {
  double epsilon = 0.0;
  std::size_t num_capped = 0;
  double weight_sum = 0.0;
  double scale = 0.0;
  double base = 0.0;
  bool all_capped = false;
  bool uniform = false;
  /// Numeric-guard path taken: epsilon/weight_sum/scale are expressed in
  /// the max-normalized weight domain. Callers comparing raw weights
  /// against `epsilon` must first map them with
  /// max(w / max_weight, 1e-12).
  bool rescaled = false;
  double max_weight = 0.0;  ///< normalizer used when `rescaled`
};

/// Cell-grouped Exp3.M solve: the arms of one SCN slot share at most
/// C distinct weights (one per hypercube cell), so the epsilon fixed
/// point runs over (value, multiplicity) groups — O(C log C) instead of
/// O(K + k log k) heap work per slot. `values[g]` is the weight shared
/// by `counts[g]` arms; K = sum(counts). Exact equivalence with the
/// arm-level solve: a consistent cut requires top[s-1] >= eps > top[s],
/// i.e. a strict value boundary, so candidate cut sizes are exactly the
/// group-boundary prefixes scanned here; interior (tied) boundaries
/// fail the consistency test in both formulations. The tie fallback
/// reproduces the arm-level epsilon = value of the k-th largest arm
/// (the group containing arm rank k). Same validation, numeric-guard
/// and gamma/K edge-case behavior as exp3m_probabilities.
void exp3m_grouped(std::span<const double> values,
                   std::span<const std::uint32_t> counts, std::size_t k,
                   double gamma, Exp3mGroupedResult& out,
                   Exp3mGroupedScratch& scratch);

/// Theory-suggested exploration rate for Exp3.M:
///   gamma = min(1, sqrt(K ln(K/k) / ((e-1) k T))).
double exp3m_default_gamma(std::size_t num_arms, std::size_t k,
                           std::size_t horizon) noexcept;

/// Dependent rounding (Gandhi et al.): samples a subset S with |S| =
/// round(sum p) such that P(i in S) = p_i exactly. Requires every
/// p_i in [0,1]. Returns the selected indices in ascending order.
std::vector<std::size_t> dep_round(std::vector<double> p, RngStream& stream);

}  // namespace lfsc
