#include "bandit/partition.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lfsc {

HypercubePartition::HypercubePartition(std::size_t dims,
                                       std::size_t parts_per_dim)
    : dims_(dims), parts_(parts_per_dim) {
  if (dims_ == 0 || parts_ == 0) {
    throw std::invalid_argument("HypercubePartition: dims and h_T must be > 0");
  }
  cell_count_ = 1;
  for (std::size_t d = 0; d < dims_; ++d) {
    if (cell_count_ > std::numeric_limits<std::size_t>::max() / parts_) {
      throw std::invalid_argument("HypercubePartition: h_T^D overflows");
    }
    cell_count_ *= parts_;
  }
}

std::size_t HypercubePartition::index(
    std::span<const double> context) const noexcept {
  std::size_t idx = 0;
  const std::size_t used = std::min(context.size(), dims_);
  for (std::size_t d = 0; d < used; ++d) {
    const double coord = std::clamp(context[d], 0.0, 1.0);
    auto part = static_cast<std::size_t>(coord * static_cast<double>(parts_));
    part = std::min(part, parts_ - 1);  // coord == 1.0 -> last cell
    idx = idx * parts_ + part;
  }
  // Missing trailing dimensions (context shorter than dims) land in part 0.
  for (std::size_t d = used; d < dims_; ++d) idx *= parts_;
  return idx;
}

std::vector<double> HypercubePartition::cell_center(std::size_t index) const {
  if (index >= cell_count_) {
    throw std::out_of_range("HypercubePartition::cell_center: bad index");
  }
  std::vector<double> center(dims_);
  for (std::size_t d = dims_; d-- > 0;) {
    const std::size_t part = index % parts_;
    index /= parts_;
    center[d] = (static_cast<double>(part) + 0.5) / static_cast<double>(parts_);
  }
  return center;
}

}  // namespace lfsc
