#include "bandit/partition.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lfsc {

HypercubePartition::HypercubePartition(std::size_t dims,
                                       std::size_t parts_per_dim)
    : dims_(dims), parts_(parts_per_dim) {
  if (dims_ == 0 || parts_ == 0) {
    throw std::invalid_argument("HypercubePartition: dims and h_T must be > 0");
  }
  cell_count_ = 1;
  for (std::size_t d = 0; d < dims_; ++d) {
    if (cell_count_ > std::numeric_limits<std::size_t>::max() / parts_) {
      throw std::invalid_argument("HypercubePartition: h_T^D overflows");
    }
    cell_count_ *= parts_;
  }
}

std::vector<double> HypercubePartition::cell_center(std::size_t index) const {
  if (index >= cell_count_) {
    throw std::out_of_range("HypercubePartition::cell_center: bad index");
  }
  std::vector<double> center(dims_);
  for (std::size_t d = dims_; d-- > 0;) {
    const std::size_t part = index % parts_;
    index /= parts_;
    center[d] = (static_cast<double>(part) + 0.5) / static_cast<double>(parts_);
  }
  return center;
}

}  // namespace lfsc
