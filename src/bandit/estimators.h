// Per-(SCN, hypercube) statistics.
//
// Two kinds of estimate coexist:
//  * sample means of observed (g, v, q) — used by vUCB and FML, and by
//    diagnostics;
//  * inverse-propensity-weighted (IPW) slot estimates — used by LFSC's
//    exponential weight update (Alg. 3 lines 2-8): for a task selected
//    with probability p, x_hat = x * 1(selected) / p is unbiased.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace lfsc {

/// Running sample means of the three observables for one arm
/// (one hypercube at one SCN).
struct ArmStats {
  std::size_t pulls = 0;
  double mean_g = 0.0;  ///< compound reward u*v/q
  double mean_v = 0.0;  ///< completion likelihood
  double mean_q = 0.0;  ///< resource consumption

  void add(double g, double v, double q) noexcept {
    ++pulls;
    const double inv = 1.0 / static_cast<double>(pulls);
    mean_g += (g - mean_g) * inv;
    mean_v += (v - mean_v) * inv;
    mean_q += (q - mean_q) * inv;
  }

  void reset() noexcept { *this = ArmStats{}; }
};

/// A table of ArmStats for all hypercubes of one SCN.
class ArmStatsTable {
 public:
  explicit ArmStatsTable(std::size_t num_cells) : stats_(num_cells) {}

  ArmStats& operator[](std::size_t cell) noexcept { return stats_[cell]; }
  const ArmStats& operator[](std::size_t cell) const noexcept {
    return stats_[cell];
  }
  std::size_t size() const noexcept { return stats_.size(); }

  void reset() noexcept {
    for (auto& s : stats_) s.reset();
  }

 private:
  std::vector<ArmStats> stats_;
};

/// Accumulates one slot's IPW estimates per hypercube, then averages over
/// the tasks that fell into each hypercube (Alg. 3 lines 6-8). Tasks that
/// were not selected contribute 0 (their indicator is 0), which keeps the
/// estimate unbiased.
///
/// The accumulator tracks the cells touched this slot, so consumers can
/// iterate and reset in O(touched) instead of O(cells) — the property
/// LFSC's sparse weight update relies on as the partition grows.
class IpwSlotAccumulator {
 public:
  explicit IpwSlotAccumulator(std::size_t num_cells = 0)
      : sum_g_(num_cells, 0.0),
        sum_v_(num_cells, 0.0),
        sum_q_(num_cells, 0.0),
        count_(num_cells, 0) {}

  /// Grows/shrinks the table (zeroing everything); for scratch reuse.
  void resize(std::size_t num_cells) {
    sum_g_.assign(num_cells, 0.0);
    sum_v_.assign(num_cells, 0.0);
    sum_q_.assign(num_cells, 0.0);
    count_.assign(num_cells, 0);
    touched_.clear();
  }

  /// Registers a task that fell into `cell` this slot. If it was selected
  /// (probability `p` > 0) and processed with observations (g, v, q), the
  /// IPW contributions are g/p, v/p, q/p; otherwise all contributions are 0.
  void add_task(std::size_t cell, bool selected, double p, double g, double v,
                double q) {
    add_presence(cell);
    if (selected) add_selected(cell, p, g, v, q);
  }

  /// Counts a covered-but-unselected task (contributions are all 0, only
  /// the per-cell divisor grows).
  void add_presence(std::size_t cell) {
    if (count_[cell]++ == 0) touched_.push_back(cell);
  }

  /// Adds the IPW contributions of a selected task whose presence was
  /// already registered via add_presence()/add_task().
  void add_selected(std::size_t cell, double p, double g, double v,
                    double q) noexcept {
    if (p > 0.0) {
      sum_g_[cell] += g / p;
      sum_v_[cell] += v / p;
      sum_q_[cell] += q / p;
    }
  }

  bool touched(std::size_t cell) const noexcept { return count_[cell] > 0; }

  /// Number of tasks registered in `cell` since the last reset — the IPW
  /// divisor. The delayed-feedback path freezes this at decision time so
  /// late batches divide by the slot's true presence count.
  std::size_t presence(std::size_t cell) const noexcept {
    return count_[cell];
  }

  /// Cells with at least one task this slot, in first-touch order.
  const std::vector<std::size_t>& touched_cells() const noexcept {
    return touched_;
  }

  double estimate_g(std::size_t cell) const noexcept {
    return count_[cell] > 0 ? sum_g_[cell] / static_cast<double>(count_[cell])
                            : 0.0;
  }
  double estimate_v(std::size_t cell) const noexcept {
    return count_[cell] > 0 ? sum_v_[cell] / static_cast<double>(count_[cell])
                            : 0.0;
  }
  double estimate_q(std::size_t cell) const noexcept {
    return count_[cell] > 0 ? sum_q_[cell] / static_cast<double>(count_[cell])
                            : 0.0;
  }

  /// O(touched) reset: only the cells used since the last reset are
  /// cleared, so a slot touching few cells pays nothing for a large table.
  void reset() noexcept {
    for (const std::size_t cell : touched_) {
      sum_g_[cell] = 0.0;
      sum_v_[cell] = 0.0;
      sum_q_[cell] = 0.0;
      count_[cell] = 0;
    }
    touched_.clear();
  }

  std::size_t size() const noexcept { return count_.size(); }

 private:
  std::vector<double> sum_g_;
  std::vector<double> sum_v_;
  std::vector<double> sum_q_;
  std::vector<std::size_t> count_;
  std::vector<std::size_t> touched_;
};

}  // namespace lfsc
