#include "bandit/exp3m.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lfsc {
namespace {

/// Branchless 4-ary max-heap sift for plain doubles (ties interchangeable:
/// only the value order feeds the fixed-point solve below).
inline void sift_down_max4(double* h, std::size_t n, std::size_t i) noexcept {
  const double node = h[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      best = h[c] > h[best] ? c : best;
    }
    if (!(h[best] > node)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = node;
}

}  // namespace


CappedProbabilities exp3m_probabilities(std::span<const double> weights,
                                        std::size_t k, double gamma) {
  CappedProbabilities out;
  Exp3mScratch scratch;
  exp3m_probabilities(weights, k, gamma, out, scratch);
  return out;
}

void exp3m_probabilities(std::span<const double> weights, std::size_t k,
                         double gamma, CappedProbabilities& out,
                         Exp3mScratch& scratch) {
  const std::size_t num_arms = weights.size();
  if (k == 0) throw std::invalid_argument("exp3m: k must be >= 1");
  if (gamma < 0.0 || gamma > 1.0) {
    throw std::invalid_argument("exp3m: gamma must be in [0,1]");
  }
  // One fused pass: validate positivity/finiteness, total and max.
  double total = 0.0;
  double max_weight = 0.0;
  for (const double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("exp3m: weights must be > 0 and finite");
    }
    total += w;
    max_weight = std::max(max_weight, w);
  }

  // Numeric guard (degraded-input hardening): a sum that overflowed to
  // +inf, or a maximum small enough that dividing by the weight sum
  // would overflow, both poison the marginals downstream. Probabilities
  // are invariant to a common scale, so recompute on the max-normalized
  // copy (with the same 1e-12 relative floor LfscPolicy keeps) instead.
  if (num_arms > 0 &&
      (!std::isfinite(total) || max_weight < 1e-100)) {
    auto& scaled = scratch.scaled;
    scaled.resize(num_arms);
    for (std::size_t i = 0; i < num_arms; ++i) {
      // True division, not multiplication by 1/max: a denormal maximum
      // makes the reciprocal infinite while max/max is still exactly 1.
      scaled[i] = std::max(weights[i] / max_weight, 1e-12);
    }
    // scaled is not aliased by the solve below (it uses heap/top/tail),
    // and the recursion terminates: max(scaled) == 1, so neither guard
    // condition can re-trigger.
    exp3m_probabilities(std::span<const double>(scaled), k, gamma, out,
                        scratch);
    return;
  }

  out.p.resize(num_arms);
  out.capped.assign(num_arms, false);
  out.num_capped = 0;
  out.epsilon = 0.0;
  out.weight_sum = 0.0;
  if (num_arms == 0) return;

  // Fewer arms than plays: every arm is selected with certainty.
  if (num_arms <= k) {
    std::fill(out.p.begin(), out.p.end(), 1.0);
    out.capped.assign(num_arms, true);
    out.num_capped = num_arms;
    out.weight_sum = total;
    return;
  }

  const auto K = static_cast<double>(num_arms);
  const auto kd = static_cast<double>(k);

  // gamma == 1 is pure exploration: uniform marginals k/K (< 1 here).
  if (gamma >= 1.0) {
    std::fill(out.p.begin(), out.p.end(), kd / K);
    out.weight_sum = total;
    return;
  }

  // Target ratio from Alg. 2 line 6: an arm whose (capped) weight share
  // reaches `rhs` has probability exactly 1.
  const double rhs = (1.0 / kd - gamma / K) / (1.0 - gamma);

  double epsilon = 0.0;
  std::size_t num_capped = 0;
  if (rhs > 0.0 && max_weight >= rhs * total) {
    // Solve the fixed point epsilon / sum(w') = rhs by scanning candidate
    // capped-set sizes s over the weights sorted descending. For K > k,
    // rhs >= 1/k (it is increasing in gamma and equals 1/k at gamma = 0),
    // so the scan's denominator 1 - rhs*s is non-positive for s >= k:
    // only the k+1 largest weights can ever be inspected. Selecting and
    // sorting just those is O(K + k log k) instead of O(K log K).
    // Extract the k+1 largest weights sorted descending via a 4-ary
    // max-heap over a copy (heapify O(K), then top_n pops). This beats
    // nth_element + sort here: the branchless sifts avoid the data-
    // dependent branch mispredicts introselect suffers on random
    // weights, and the pops emit the prefix already sorted.
    auto& heap = scratch.heap;
    heap.assign(weights.begin(), weights.end());
    const std::size_t top_n = std::min(num_arms, k + 1);
    std::size_t len = num_arms;
    for (std::size_t i = (len + 2) / 4; i-- > 0;) sift_down_max4(heap.data(), len, i);
    auto& top = scratch.top;
    top.resize(top_n);
    for (std::size_t s = 0; s < top_n; ++s) {
      top[s] = heap[0];
      heap[0] = heap[--len];
      sift_down_max4(heap.data(), len, 0);
    }
    // tail[s] = sum of the K - s smallest weights. Built as a suffix sum
    // (rest-of-heap total, then adding top weights back smallest-first)
    // rather than total - prefix(s): the scan divides by tail when the
    // top weights dominate, where subtraction would cancel catastrophically.
    auto& tail = scratch.tail;
    double rest = 0.0;
    for (std::size_t i = 0; i < len; ++i) rest += heap[i];
    tail.assign(top_n + 1, 0.0);
    tail[top_n] = rest;
    for (std::size_t i = top_n; i-- > 0;) tail[i] = tail[i + 1] + top[i];
    for (std::size_t s = 1; s < top_n; ++s) {
      const double denom = 1.0 - rhs * static_cast<double>(s);
      if (denom <= 0.0) break;  // capping more arms cannot satisfy p <= 1
      const double eps = rhs * tail[s] / denom;
      // Consistency: exactly the s largest weights are >= eps.
      if (top[s - 1] >= eps && top[s] < eps) {
        epsilon = eps;
        num_capped = s;
        break;
      }
    }
    // No consistent cut found means the weights are so concentrated that
    // k arms tie at the cap; fall back to capping the top-k ties.
    if (num_capped == 0) {
      const double denom = 1.0 - rhs * kd;
      epsilon = denom > 0.0 ? rhs * tail[k] / denom : top[k - 1];
      num_capped = k;
    }
  }

  double weight_sum = 0.0;
  if (num_capped > 0) {
    // Identify capped arms (weight >= epsilon), largest-first for ties.
    // Arms are marked by value; exact ties beyond num_capped stay uncapped
    // via a countdown to keep |S'| consistent with the fixed point.
    std::size_t remaining = num_capped;
    for (std::size_t i = 0; i < num_arms; ++i) {
      if (remaining > 0 && weights[i] >= epsilon) {
        out.capped[i] = true;
        --remaining;
        weight_sum += epsilon;
      } else {
        weight_sum += weights[i];
      }
    }
  } else {
    weight_sum = total;
  }

  // One reciprocal instead of a divide per arm; the mixing terms are
  // loop-invariant.
  const double scale = kd * (1.0 - gamma) / weight_sum;
  const double base = kd * gamma / K;
  for (std::size_t i = 0; i < num_arms; ++i) {
    const double w = out.capped[i] ? epsilon : weights[i];
    out.p[i] = std::clamp(scale * w + base, 0.0, 1.0);
  }
  out.num_capped = num_capped;
  out.epsilon = epsilon;
  out.weight_sum = weight_sum;
}

void exp3m_grouped(std::span<const double> values,
                   std::span<const std::uint32_t> counts, std::size_t k,
                   double gamma, Exp3mGroupedResult& out,
                   Exp3mGroupedScratch& scratch) {
  const std::size_t num_groups = values.size();
  if (k == 0) throw std::invalid_argument("exp3m: k must be >= 1");
  if (gamma < 0.0 || gamma > 1.0) {
    throw std::invalid_argument("exp3m: gamma must be in [0,1]");
  }
  double total = 0.0;
  double max_weight = 0.0;
  std::size_t num_arms = 0;
  for (std::size_t g = 0; g < num_groups; ++g) {
    const double v = values[g];
    if (!(v > 0.0) || !std::isfinite(v)) {
      throw std::invalid_argument("exp3m: weights must be > 0 and finite");
    }
    total += v * static_cast<double>(counts[g]);
    max_weight = std::max(max_weight, v);
    num_arms += counts[g];
  }

  // Same degenerate-scale guard as the arm-level solve: re-express
  // relative to the maximum (probabilities are scale-invariant).
  if (num_groups > 0 && (!std::isfinite(total) || max_weight < 1e-100)) {
    auto& scaled = scratch.scaled;
    scaled.resize(num_groups);
    for (std::size_t g = 0; g < num_groups; ++g) {
      scaled[g] = std::max(values[g] / max_weight, 1e-12);
    }
    exp3m_grouped(std::span<const double>(scaled), counts, k, gamma, out,
                  scratch);
    out.rescaled = true;
    out.max_weight = max_weight;
    return;
  }

  out = Exp3mGroupedResult{};
  if (num_arms == 0) return;

  const auto K = static_cast<double>(num_arms);
  const auto kd = static_cast<double>(k);

  if (num_arms <= k) {
    out.all_capped = true;
    out.num_capped = num_arms;
    out.weight_sum = total;
    return;
  }
  if (gamma >= 1.0) {
    out.uniform = true;
    out.base = kd / K;
    out.weight_sum = total;
    return;
  }

  const double rhs = (1.0 / kd - gamma / K) / (1.0 - gamma);

  double epsilon = 0.0;
  std::size_t num_capped = 0;
  if (rhs > 0.0 && max_weight >= rhs * total) {
    // Sort the groups by value descending (index ascending on ties, for
    // determinism; tie order cannot change the solve).
    auto& order = scratch.order;
    order.resize(num_groups);
    for (std::size_t g = 0; g < num_groups; ++g) {
      order[g] = static_cast<std::uint32_t>(g);
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (values[a] != values[b]) return values[a] > values[b];
                return a < b;
              });
    // suffix[j] = sum over sorted groups j..G-1 of value*count, built
    // smallest-first like the arm-level tail to avoid cancellation.
    auto& suffix = scratch.suffix;
    suffix.resize(num_groups + 1);
    suffix[num_groups] = 0.0;
    for (std::size_t j = num_groups; j-- > 0;) {
      const std::uint32_t g = order[j];
      suffix[j] = suffix[j + 1] +
                  values[g] * static_cast<double>(counts[g]);
    }
    // Scan candidate cut sizes: only group-boundary prefixes, in the
    // same ascending order as the arm-level scan.
    std::size_t cum = 0;
    for (std::size_t j = 0; j + 1 < num_groups; ++j) {
      cum += counts[order[j]];
      const double denom = 1.0 - rhs * static_cast<double>(cum);
      if (denom <= 0.0) break;
      const double eps = rhs * suffix[j + 1] / denom;
      if (values[order[j]] >= eps && values[order[j + 1]] < eps) {
        epsilon = eps;
        num_capped = cum;
        break;
      }
    }
    if (num_capped == 0) {
      // Tie fallback: cap the top-k. tail(k) = total minus the k
      // largest arms, splitting the group that spans arm rank k.
      const double denom = 1.0 - rhs * kd;
      std::size_t before = 0;
      std::size_t j = 0;
      while (before + counts[order[j]] <= k) {
        before += counts[order[j]];
        ++j;
      }
      const std::uint32_t g = order[j];
      if (denom > 0.0) {
        const auto beyond =
            static_cast<double>(before + counts[g] - k);
        const double tail_k = suffix[j + 1] + values[g] * beyond;
        epsilon = rhs * tail_k / denom;
      } else {
        // values[order[j]] is the weight of arm rank k-1 when the
        // boundary is interior to group j; when before == k the k-th
        // largest arm is the last arm of group j-1.
        epsilon = before == k ? values[order[j - 1]] : values[g];
      }
      num_capped = k;
    }
  }

  double weight_sum = 0.0;
  if (num_capped > 0) {
    std::size_t remaining = num_capped;
    for (std::size_t j = 0; j < num_groups; ++j) {
      const std::uint32_t g = scratch.order[j];
      const std::size_t c = counts[g];
      const std::size_t take =
          values[g] >= epsilon ? std::min(remaining, c) : 0;
      remaining -= take;
      weight_sum += static_cast<double>(take) * epsilon +
                    static_cast<double>(c - take) * values[g];
    }
  } else {
    weight_sum = total;
  }

  out.epsilon = epsilon;
  out.num_capped = num_capped;
  out.weight_sum = weight_sum;
  out.scale = kd * (1.0 - gamma) / weight_sum;
  out.base = kd * gamma / K;
}

double exp3m_default_gamma(std::size_t num_arms, std::size_t k,
                           std::size_t horizon) noexcept {
  if (num_arms == 0 || k == 0 || horizon == 0 || num_arms <= k) return 0.0;
  const auto K = static_cast<double>(num_arms);
  const auto kd = static_cast<double>(k);
  const auto T = static_cast<double>(horizon);
  const double value =
      std::sqrt(K * std::log(K / kd) / ((std::exp(1.0) - 1.0) * kd * T));
  return std::min(1.0, value);
}

std::vector<std::size_t> dep_round(std::vector<double> p, RngStream& stream) {
  const std::size_t n = p.size();
  constexpr double kTol = 1e-12;
  for (const double value : p) {
    if (value < -kTol || value > 1.0 + kTol) {
      throw std::invalid_argument("dep_round: probabilities must be in [0,1]");
    }
  }
  // Indices with fractional probability; pairs are repeatedly rounded
  // against each other until at most one fractional index remains.
  std::vector<std::size_t> fractional;
  fractional.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] > kTol && p[i] < 1.0 - kTol) fractional.push_back(i);
  }
  while (fractional.size() >= 2) {
    const std::size_t i = fractional[fractional.size() - 2];
    const std::size_t j = fractional[fractional.size() - 1];
    const double alpha = std::min(1.0 - p[i], p[j]);
    const double beta = std::min(p[i], 1.0 - p[j]);
    // Move probability mass between i and j, preserving the expectation
    // and the total sum.
    if (stream.uniform() < beta / (alpha + beta)) {
      p[i] += alpha;
      p[j] -= alpha;
    } else {
      p[i] -= beta;
      p[j] += beta;
    }
    fractional.pop_back();
    fractional.pop_back();
    if (p[i] > kTol && p[i] < 1.0 - kTol) fractional.push_back(i);
    if (p[j] > kTol && p[j] < 1.0 - kTol) fractional.push_back(j);
  }
  // A single residual fractional entry (sum p not integral) is resolved
  // by a Bernoulli draw, preserving its marginal.
  if (fractional.size() == 1) {
    const std::size_t i = fractional.front();
    p[i] = stream.bernoulli(p[i]) ? 1.0 : 0.0;
  }
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] >= 1.0 - kTol) selected.push_back(i);
  }
  return selected;
}

}  // namespace lfsc
