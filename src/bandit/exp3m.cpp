#include "bandit/exp3m.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lfsc {

CappedProbabilities exp3m_probabilities(std::span<const double> weights,
                                        std::size_t k, double gamma) {
  const std::size_t num_arms = weights.size();
  if (k == 0) throw std::invalid_argument("exp3m: k must be >= 1");
  if (gamma < 0.0 || gamma > 1.0) {
    throw std::invalid_argument("exp3m: gamma must be in [0,1]");
  }
  for (const double w : weights) {
    if (!(w > 0.0)) throw std::invalid_argument("exp3m: weights must be > 0");
  }

  CappedProbabilities out;
  out.p.assign(num_arms, 0.0);
  out.capped.assign(num_arms, false);
  if (num_arms == 0) return out;

  // Fewer arms than plays: every arm is selected with certainty.
  if (num_arms <= k) {
    std::fill(out.p.begin(), out.p.end(), 1.0);
    out.capped.assign(num_arms, true);
    out.weight_sum = std::accumulate(weights.begin(), weights.end(), 0.0);
    return out;
  }

  const auto K = static_cast<double>(num_arms);
  const auto kd = static_cast<double>(k);

  // gamma == 1 is pure exploration: uniform marginals k/K (< 1 here).
  if (gamma >= 1.0) {
    std::fill(out.p.begin(), out.p.end(), kd / K);
    out.weight_sum = std::accumulate(weights.begin(), weights.end(), 0.0);
    return out;
  }

  // Target ratio from Alg. 2 line 6: an arm whose (capped) weight share
  // reaches `rhs` has probability exactly 1.
  const double rhs = (1.0 / kd - gamma / K) / (1.0 - gamma);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);

  double epsilon = 0.0;
  std::size_t num_capped = 0;
  const double max_weight = *std::max_element(weights.begin(), weights.end());
  std::vector<double> sorted;
  if (rhs > 0.0 && max_weight >= rhs * total) {
    // Solve the fixed point epsilon / sum(w') = rhs by scanning candidate
    // capped-set sizes over the weights sorted descending.
    sorted.assign(weights.begin(), weights.end());
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    // Suffix sums: tail[s] = sum of sorted[s..K-1].
    std::vector<double> tail(num_arms + 1, 0.0);
    for (std::size_t i = num_arms; i-- > 0;) tail[i] = tail[i + 1] + sorted[i];
    for (std::size_t s = 1; s < num_arms; ++s) {
      const double denom = 1.0 - rhs * static_cast<double>(s);
      if (denom <= 0.0) break;  // capping more arms cannot satisfy p <= 1
      const double eps = rhs * tail[s] / denom;
      // Consistency: exactly the s largest weights are >= eps.
      if (sorted[s - 1] >= eps && sorted[s] < eps) {
        epsilon = eps;
        num_capped = s;
        break;
      }
    }
    // No consistent cut found means the weights are so concentrated that
    // k arms tie at the cap; fall back to capping the top-k ties.
    if (num_capped == 0) {
      const double denom = 1.0 - rhs * kd;
      epsilon = denom > 0.0 ? rhs * tail[k] / denom : sorted[k - 1];
      num_capped = k;
    }
  }

  double weight_sum = 0.0;
  if (num_capped > 0) {
    // Identify capped arms (weight >= epsilon), largest-first for ties.
    // Arms are marked by value; exact ties beyond num_capped stay uncapped
    // via a countdown to keep |S'| consistent with the fixed point.
    std::size_t remaining = num_capped;
    for (std::size_t i = 0; i < num_arms; ++i) {
      if (remaining > 0 && weights[i] >= epsilon) {
        out.capped[i] = true;
        --remaining;
        weight_sum += epsilon;
      } else {
        weight_sum += weights[i];
      }
    }
  } else {
    weight_sum = total;
  }

  for (std::size_t i = 0; i < num_arms; ++i) {
    const double w = out.capped[i] ? epsilon : weights[i];
    double p = kd * ((1.0 - gamma) * w / weight_sum + gamma / K);
    out.p[i] = std::clamp(p, 0.0, 1.0);
  }
  out.epsilon = epsilon;
  out.weight_sum = weight_sum;
  return out;
}

double exp3m_default_gamma(std::size_t num_arms, std::size_t k,
                           std::size_t horizon) noexcept {
  if (num_arms == 0 || k == 0 || horizon == 0 || num_arms <= k) return 0.0;
  const auto K = static_cast<double>(num_arms);
  const auto kd = static_cast<double>(k);
  const auto T = static_cast<double>(horizon);
  const double value =
      std::sqrt(K * std::log(K / kd) / ((std::exp(1.0) - 1.0) * kd * T));
  return std::min(1.0, value);
}

std::vector<std::size_t> dep_round(std::vector<double> p, RngStream& stream) {
  const std::size_t n = p.size();
  constexpr double kTol = 1e-12;
  for (const double value : p) {
    if (value < -kTol || value > 1.0 + kTol) {
      throw std::invalid_argument("dep_round: probabilities must be in [0,1]");
    }
  }
  // Indices with fractional probability; pairs are repeatedly rounded
  // against each other until at most one fractional index remains.
  std::vector<std::size_t> fractional;
  fractional.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] > kTol && p[i] < 1.0 - kTol) fractional.push_back(i);
  }
  while (fractional.size() >= 2) {
    const std::size_t i = fractional[fractional.size() - 2];
    const std::size_t j = fractional[fractional.size() - 1];
    const double alpha = std::min(1.0 - p[i], p[j]);
    const double beta = std::min(p[i], 1.0 - p[j]);
    // Move probability mass between i and j, preserving the expectation
    // and the total sum.
    if (stream.uniform() < beta / (alpha + beta)) {
      p[i] += alpha;
      p[j] -= alpha;
    } else {
      p[i] -= beta;
      p[j] += beta;
    }
    fractional.pop_back();
    fractional.pop_back();
    if (p[i] > kTol && p[i] < 1.0 - kTol) fractional.push_back(i);
    if (p[j] > kTol && p[j] < 1.0 - kTol) fractional.push_back(j);
  }
  // A single residual fractional entry (sum p not integral) is resolved
  // by a Bernoulli draw, preserving its marginal.
  if (fractional.size() == 1) {
    const std::size_t i = fractional.front();
    p[i] = stream.bernoulli(p[i]) ? 1.0 : 0.0;
  }
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] >= 1.0 - kTol) selected.push_back(i);
  }
  return selected;
}

}  // namespace lfsc
