// mmWave campus: the physics-driven world. Completion likelihoods are
// not configured — they emerge from 3GPP-style pathloss, log-normal
// shadowing, beamforming gain, human-body blockage and the task's data
// volume vs its airtime share; resource consumption comes from the edge
// server compute model. LFSC learns the same way it does on the
// table-driven environment, because all it ever sees is (context,
// feedback).
//
//   ./examples/mmwave_campus [T]
#include <cstdlib>
#include <iostream>

#include "baselines/oracle.h"
#include "baselines/random_policy.h"
#include "common/table.h"
#include "harness/runner.h"
#include "lfsc/lfsc_policy.h"
#include "radio/radio_simulator.h"

int main(int argc, char** argv) {
  using namespace lfsc;

  const int horizon = argc > 1 ? std::atoi(argv[1]) : 600;
  if (horizon <= 0) {
    std::cerr << "usage: mmwave_campus [positive horizon T]\n";
    return 1;
  }

  NetworkConfig net{.num_scns = 10,
                    .capacity_c = 8,
                    .qos_alpha = 4.0,
                    .resource_beta = 11.0};
  RadioSimConfig config;
  config.geometry.num_wds = 220;
  config.geometry.area_km = 2.0;
  config.seed = 2026;
  RadioSimulator sim(net, config);

  std::cout << "mmWave campus: " << net.num_scns << " SCNs at "
            << config.pathloss.carrier_ghz << " GHz, "
            << config.link.bandwidth_mhz << " MHz, "
            << config.link.tx_antennas << "x" << config.link.rx_antennas
            << " antennas, " << config.geometry.num_wds << " devices\n\n";

  std::cout << "link budget vs distance (LoS, no shadowing):\n";
  Table budget({"distance (m)", "rate (Mbit/s)",
                "movable in airtime (Mbit)", "P(LoS)", "P(blockage)"});
  for (const double d : {25.0, 100.0, 250.0, 500.0, 800.0}) {
    const double rate = sim.nominal_rate_mbps(d);
    budget.add_row({Table::num(d, 0), Table::num(rate, 0),
                    Table::num(rate * config.airtime_per_task_s, 1),
                    Table::num(los_probability(d), 2),
                    Table::num(blockage_probability(d, config.link), 3)});
  }
  budget.print(std::cout);
  std::cout << "(tasks carry 6-24 Mbit total, so cell-edge and blocked "
               "links cannot finish them\n — this is the V heterogeneity "
               "LFSC has to learn)\n\n";

  OraclePolicy oracle(net);
  LfscConfig lfsc_config;
  lfsc_config.horizon = static_cast<std::size_t>(horizon);
  lfsc_config.expected_tasks_per_scn = 40;
  LfscPolicy lfsc(net, lfsc_config);
  RandomPolicy random(net);
  Policy* policies[] = {&oracle, &lfsc, &random};
  const auto result = run_experiment(sim, policies, {.horizon = horizon});

  Table table({"policy", "total reward", "QoS viol", "res viol", "ratio"});
  for (const auto& rec : result.series) {
    table.add_row({std::string(rec.name()),
                   Table::num(rec.total_reward(), 1),
                   Table::num(rec.total_qos_violation(), 1),
                   Table::num(rec.total_resource_violation(), 1),
                   Table::num(rec.final_performance_ratio(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nreading the numbers: LFSC never sees the geometry — it "
               "learns per-(SCN,\ncontext) statistics only. That reliably "
               "buys lower violations and a reward\nedge over Random (the "
               "volume-vs-likelihood gradient is contextual), but most\nof "
               "the Oracle's remaining margin is per-link randomness (LoS, "
               "shadowing,\nblockage) that no contextual learner can see "
               "before committing — an\ninstructive contrast to the "
               "table-driven world, where context explains\nnearly "
               "everything.\n";
  return 0;
}
