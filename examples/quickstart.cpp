// Quickstart: build the paper's small cell network, run LFSC against the
// benchmark policies for a short horizon, and print the summary table.
//
//   ./examples/quickstart [T]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
  using namespace lfsc;

  const int horizon = argc > 1 ? std::atoi(argv[1]) : 500;
  if (horizon <= 0) {
    std::cerr << "usage: quickstart [positive horizon T]\n";
    return 1;
  }

  // The scaled-down network (6 SCNs) keeps this instant; swap in
  // PaperSetup{} for the full 30-SCN evaluation configuration.
  PaperSetup setup = small_setup();
  setup.set_horizon(static_cast<std::size_t>(horizon));

  std::cout << "Small cell network: " << setup.net.num_scns
            << " SCNs, c=" << setup.net.capacity_c
            << ", alpha=" << setup.net.qos_alpha
            << ", beta=" << setup.net.resource_beta << ", T=" << horizon
            << "\n\n";

  auto sim = setup.make_simulator();
  auto owned = make_paper_policies(setup);
  auto policies = policy_pointers(owned);
  const auto result = run_experiment(sim, policies, {.horizon = horizon});

  Table table({"policy", "total reward", "QoS viol (1c)", "res viol (1d)",
               "perf ratio"});
  for (const auto& series : result.series) {
    table.add_row({std::string(series.name()),
                   Table::num(series.total_reward(), 1),
                   Table::num(series.total_qos_violation(), 1),
                   Table::num(series.total_resource_violation(), 1),
                   Table::num(series.final_performance_ratio(), 4)});
  }
  table.print(std::cout);
  std::cout << "\ncompleted in " << Table::num(result.wall_seconds, 2)
            << "s\n";
  return 0;
}
