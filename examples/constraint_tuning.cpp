// Constraint tuning: how the QoS threshold alpha and the resource cap
// beta trade reward against violations (the operational question behind
// the paper's Fig. 3). Sweeps alpha and beta on the small setup and
// prints the frontier for LFSC and the Oracle.
//
//   ./examples/constraint_tuning [T]
#include <cstdlib>
#include <functional>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "harness/sweep.h"

int main(int argc, char** argv) {
  using namespace lfsc;

  const int horizon = argc > 1 ? std::atoi(argv[1]) : 600;
  if (horizon <= 0) {
    std::cerr << "usage: constraint_tuning [positive horizon T]\n";
    return 1;
  }

  struct Point {
    double alpha;
    double beta;
  };
  std::vector<Point> points;
  for (const double alpha : {2.0, 3.0, 4.0}) {
    for (const double beta : {6.0, 7.0, 8.0}) {
      points.push_back({alpha, beta});
    }
  }

  struct Row {
    Point point;
    double lfsc_reward, lfsc_violation;
    double oracle_reward, oracle_violation;
  };

  const std::function<Row(std::size_t)> eval = [&](std::size_t i) {
    PaperSetup s = small_setup();
    s.net.qos_alpha = points[i].alpha;
    s.net.resource_beta = points[i].beta;
    s.set_horizon(static_cast<std::size_t>(horizon));
    auto sim = s.make_simulator();
    auto owned = make_paper_policies(s);
    auto policies = policy_pointers(owned);
    const auto result = run_experiment(sim, policies, {.horizon = horizon});
    Row row;
    row.point = points[i];
    row.lfsc_reward = result.find("LFSC").total_reward();
    row.lfsc_violation = result.find("LFSC").total_violation();
    row.oracle_reward = result.find("Oracle").total_reward();
    row.oracle_violation = result.find("Oracle").total_violation();
    return row;
  };

  std::cout << "sweeping " << points.size() << " (alpha, beta) points, T="
            << horizon << " (parallel)\n\n";
  const auto rows = sweep_parallel<Row>(points.size(), eval);

  Table table({"alpha", "beta", "LFSC reward", "LFSC viol", "Oracle reward",
               "Oracle viol"});
  for (const auto& row : rows) {
    table.add_row({Table::num(row.point.alpha, 0),
                   Table::num(row.point.beta, 0),
                   Table::num(row.lfsc_reward, 1),
                   Table::num(row.lfsc_violation, 1),
                   Table::num(row.oracle_reward, 1),
                   Table::num(row.oracle_violation, 1)});
  }
  table.print(std::cout);
  std::cout << "\nreading the frontier: tightening alpha raises violations "
               "across the board;\nloosening beta lets both policies take "
               "heavier tasks for more reward.\n";
  return 0;
}
