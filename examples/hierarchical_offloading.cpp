// Hierarchical offloading: the paper's Sec. 3.3 / future-work scenario in
// one runnable piece. Three tiers of the same workload:
//
//   1. LFSC alone               — tasks the SCNs skip are simply lost;
//   2. LFSC + MBS fallback      — the macrocell absorbs skipped tasks at
//                                 a latency discount (Sec. 3.3);
//   3. Joint(LFSC+MBS) + MBS    — heavy, latency-tolerant tasks are
//                                 pre-routed to the MBS so SCN capacity
//                                 concentrates on latency-sensitive work
//                                 (the paper's future-work proposal);
//
// plus persistent re-submission (tasks retry for a few slots before
// giving up), reported as service-rate statistics.
//
//   ./examples/hierarchical_offloading [T]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "extensions/joint_policy.h"
#include "extensions/mbs.h"
#include "extensions/persistent.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "lfsc/lfsc_policy.h"
#include "metrics/metrics.h"

int main(int argc, char** argv) {
  using namespace lfsc;

  const int horizon = argc > 1 ? std::atoi(argv[1]) : 800;
  if (horizon <= 0) {
    std::cerr << "usage: hierarchical_offloading [positive horizon T]\n";
    return 1;
  }

  PaperSetup setup = small_setup();
  setup.set_horizon(static_cast<std::size_t>(horizon));
  const MbsConfig mbs{.capacity = 30, .reward_discount = 0.5};

  struct TierResult {
    std::string label;
    double scn_reward = 0.0;
    double mbs_reward = 0.0;
    double violations = 0.0;
    long unserved = 0;
  };
  std::vector<TierResult> tiers;

  // Tier 1 & 2 share one run: the fallback is pure post-processing.
  {
    auto sim = setup.make_simulator();
    LfscPolicy lfsc(setup.net, setup.lfsc);
    TierResult t1{.label = "LFSC alone"};
    TierResult t2{.label = "LFSC + MBS fallback"};
    for (int t = 1; t <= horizon; ++t) {
      const auto slot = sim.generate_slot(t);
      const auto a = lfsc.select(slot.info);
      const auto outcome = evaluate_slot(slot, a, setup.net);
      const auto extra = evaluate_mbs_fallback(slot, a, mbs);
      t1.scn_reward += outcome.reward;
      t1.violations += outcome.qos_violation + outcome.resource_violation;
      t1.unserved += extra.mbs_tasks + extra.unserved_tasks;
      t2.scn_reward += outcome.reward;
      t2.mbs_reward += extra.mbs_reward;
      t2.violations = t1.violations;
      t2.unserved += extra.unserved_tasks;
      lfsc.observe(slot.info, a, make_feedback(slot, a));
    }
    tiers.push_back(t1);
    tiers.push_back(t2);
  }

  // Tier 3: heavy latency-tolerant tasks pre-routed to the MBS.
  {
    auto sim = setup.make_simulator();
    JointMbsPolicy joint(std::make_unique<LfscPolicy>(setup.net, setup.lfsc));
    TierResult t3{.label = "Joint(LFSC+MBS) pre-routing"};
    for (int t = 1; t <= horizon; ++t) {
      const auto slot = sim.generate_slot(t);
      const auto a = joint.select(slot.info);
      const auto outcome = evaluate_slot(slot, a, setup.net);
      const auto extra = evaluate_mbs_fallback(slot, a, mbs);
      t3.scn_reward += outcome.reward;
      t3.mbs_reward += extra.mbs_reward;
      t3.violations += outcome.qos_violation + outcome.resource_violation;
      t3.unserved += extra.unserved_tasks;
      joint.observe(slot.info, a, make_feedback(slot, a));
    }
    tiers.push_back(t3);
  }

  std::cout << "hierarchical offloading, " << setup.net.num_scns
            << " SCNs + 1 MBS (cap " << mbs.capacity << ", discount "
            << mbs.reward_discount << "), T=" << horizon << "\n\n";
  Table table({"tier", "SCN reward", "MBS reward", "system total",
               "violations", "unserved"});
  for (const auto& tier : tiers) {
    table.add_row({tier.label, Table::num(tier.scn_reward, 1),
                   Table::num(tier.mbs_reward, 1),
                   Table::num(tier.scn_reward + tier.mbs_reward, 1),
                   Table::num(tier.violations, 1),
                   std::to_string(tier.unserved)});
  }
  table.print(std::cout);

  // Persistence: how much service rate does patience buy? Run it on an
  // under-loaded variant (demand straddles capacity) — in a saturated
  // network throughput is capacity-bound and patience only shifts *which*
  // tasks are served.
  PaperSetup slack = setup;
  slack.coverage.tasks_per_scn_min = 4;
  slack.coverage.tasks_per_scn_max = 30;
  std::cout << "\npersistent re-submission (Sec. 3.3), under-loaded "
               "network:\n";
  Table persistence({"patience", "served fraction", "mean wait (slots)",
                     "expired", "peak backlog"});
  for (const int patience : {0, 1, 3, 5}) {
    auto sim = slack.make_simulator();
    LfscPolicy lfsc(slack.net, slack.lfsc);
    const auto run = run_persistent_experiment(
        sim, lfsc, {.horizon = horizon}, {.max_patience = patience});
    persistence.add_row({std::to_string(patience),
                         Table::num(run.stats.served_fraction(), 3),
                         Table::num(run.stats.mean_wait_slots, 2),
                         std::to_string(run.stats.expired_tasks),
                         std::to_string(run.stats.max_backlog)});
  }
  persistence.print(std::cout);
  std::cout << "\ntakeaway: the MBS fallback tier turns skipped tasks into "
               "revenue at a\nlatency discount. Pre-routing trades SCN reward "
               "for MBS absorption — whether\nthat wins depends on the "
               "discount and the share of heavy tasks. Patience\nconverts "
               "unserved-but-covered tasks into (delayed) service when slack "
               "slots\nexist; in a saturated network throughput stays "
               "capacity-bound.\n";
  return 0;
}
