// Extending the framework: implement your own offloading policy against
// the Policy interface and benchmark it with the standard harness.
//
// The example policy is a simple epsilon-greedy learner over the same
// context hypercubes LFSC uses — a realistic starting point for users
// prototyping alternatives.
//
//   ./examples/custom_policy [T]
#include <cstdlib>
#include <iostream>
#include <string_view>

#include "bandit/estimators.h"
#include "bandit/partition.h"
#include "common/rng.h"
#include "common/table.h"
#include "harness/paper_setup.h"
#include "harness/runner.h"
#include "solver/greedy_assignment.h"

namespace {

using namespace lfsc;

/// Epsilon-greedy over context hypercubes with greedy cross-SCN
/// coordination. Everything a policy needs: select() from SlotInfo,
/// learn in observe() from its own feedback only.
class EpsilonGreedyPolicy final : public Policy {
 public:
  EpsilonGreedyPolicy(const NetworkConfig& net, double epsilon,
                      std::uint64_t seed = 7)
      : net_(net), epsilon_(epsilon), partition_(kContextDims, 3),
        rng_(seed, 0xE9) {
    for (int m = 0; m < net.num_scns; ++m) {
      stats_.emplace_back(partition_.cell_count());
    }
  }

  std::string_view name() const noexcept override { return "EpsGreedy"; }

  Assignment select(const SlotInfo& info) override {
    std::vector<Edge> edges;
    for (std::size_t m = 0; m < info.coverage.size(); ++m) {
      const auto& cover = info.coverage[m];
      for (std::size_t j = 0; j < cover.size(); ++j) {
        const auto& ctx =
            info.tasks[static_cast<std::size_t>(cover[j])].context;
        const auto& arm = stats_[m][partition_.index(ctx.normalized)];
        Edge e;
        e.scn = static_cast<int>(m);
        e.task = cover[j];
        e.local = static_cast<int>(j);
        // With probability epsilon the edge gets a random key (explore);
        // otherwise its empirical mean (exploit).
        e.weight = rng_.bernoulli(epsilon_) ? rng_.uniform(0.0, 1.0)
                                            : std::max(arm.mean_g, 1e-6);
        edges.push_back(e);
      }
    }
    return greedy_select(static_cast<int>(info.coverage.size()),
                         static_cast<int>(info.tasks.size()), net_.capacity_c,
                         edges);
  }

  void observe(const SlotInfo& info, const Assignment&,
               const SlotFeedback& feedback) override {
    for (std::size_t m = 0; m < feedback.per_scn.size(); ++m) {
      for (const auto& f : feedback.per_scn[m]) {
        const int task =
            info.coverage[m][static_cast<std::size_t>(f.local_index)];
        const auto& ctx = info.tasks[static_cast<std::size_t>(task)].context;
        stats_[m][partition_.index(ctx.normalized)].add(f.compound(), f.v,
                                                        f.q);
      }
    }
  }

 private:
  NetworkConfig net_;
  double epsilon_;
  HypercubePartition partition_;
  std::vector<ArmStatsTable> stats_;
  RngStream rng_;
};

}  // namespace

int main(int argc, char** argv) {
  const int horizon = argc > 1 ? std::atoi(argv[1]) : 1000;
  if (horizon <= 0) {
    std::cerr << "usage: custom_policy [positive horizon T]\n";
    return 1;
  }

  PaperSetup setup = small_setup();
  setup.set_horizon(static_cast<std::size_t>(horizon));
  auto sim = setup.make_simulator();

  auto owned = make_paper_policies(setup);
  EpsilonGreedyPolicy mine(setup.net, /*epsilon=*/0.1);
  auto policies = policy_pointers(owned);
  policies.push_back(&mine);

  const auto result = run_experiment(sim, policies, {.horizon = horizon});

  Table table({"policy", "total reward", "total violation", "ratio"});
  for (const auto& series : result.series) {
    table.add_row({std::string(series.name()),
                   Table::num(series.total_reward(), 1),
                   Table::num(series.total_violation(), 1),
                   Table::num(series.final_performance_ratio(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nEpsGreedy ignores the constraints, so expect a reward "
               "between Random and vUCB\nwith violations to match — the gap "
               "to LFSC is the value of constraint-aware learning.\n";
  return 0;
}
