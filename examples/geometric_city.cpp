// Geometric scenario: SCNs mounted on fixed street furniture across a
// 6x6 km district, wireless devices moving by random waypoint, coverage
// by radio range. Demonstrates the spatial coverage model (instead of the
// paper's abstract |D_mt| ~ U[35,100] arrivals) and mmWave blockage.
//
//   ./examples/geometric_city [T]
#include <cstdlib>
#include <iostream>

#include "baselines/oracle.h"
#include "baselines/random_policy.h"
#include "common/table.h"
#include "harness/runner.h"
#include "lfsc/lfsc_policy.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace lfsc;

  const int horizon = argc > 1 ? std::atoi(argv[1]) : 400;
  if (horizon <= 0) {
    std::cerr << "usage: geometric_city [positive horizon T]\n";
    return 1;
  }

  NetworkConfig net{.num_scns = 12,
                    .capacity_c = 8,
                    .qos_alpha = 4.0,
                    .resource_beta = 11.0};

  GeometricCoverageConfig geo;
  geo.num_scns = net.num_scns;
  geo.num_wds = 250;
  geo.area_km = 6.0;
  geo.coverage_radius_km = 1.6;
  geo.wd_speed_km_per_slot = 0.08;
  geo.task_probability = 0.7;

  EnvironmentConfig env;
  env.num_scns = net.num_scns;
  env.blockage_prob = 0.15;  // mmWave blockage interrupts 15% of tasks
  env.seed = 2026;

  Simulator sim(net, env, std::make_unique<GeometricCoverage>(geo));

  // Report the deployment so the scenario is inspectable.
  const auto* coverage =
      dynamic_cast<const GeometricCoverage*>(&sim.coverage());
  std::cout << "deployment: " << geo.num_scns << " SCNs over "
            << geo.area_km << "x" << geo.area_km << " km, radius "
            << geo.coverage_radius_km << " km, " << geo.num_wds
            << " devices, blockage " << env.blockage_prob * 100 << "%\n";
  std::cout << "SCN positions (km):";
  for (const auto& p : coverage->scn_positions()) {
    std::cout << " (" << Table::num(p.x, 1) << "," << Table::num(p.y, 1)
              << ")";
  }
  std::cout << "\n\n";

  LfscConfig lfsc_config;
  lfsc_config.horizon = static_cast<std::size_t>(horizon);
  lfsc_config.expected_tasks_per_scn = 40;
  OraclePolicy oracle(net);
  LfscPolicy lfsc(net, lfsc_config);
  RandomPolicy random(net);
  Policy* policies[] = {&oracle, &lfsc, &random};

  const auto result = run_experiment(sim, policies, {.horizon = horizon});

  Table table({"policy", "total reward", "QoS viol", "res viol", "ratio"});
  for (const auto& series : result.series) {
    table.add_row({std::string(series.name()),
                   Table::num(series.total_reward(), 1),
                   Table::num(series.total_qos_violation(), 1),
                   Table::num(series.total_resource_violation(), 1),
                   Table::num(series.final_performance_ratio(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nnote: with mobile devices the per-SCN task mix drifts "
               "every slot;\nLFSC's hypercube weights track contexts, not "
               "device identities, so it\nremains applicable.\n";
  return 0;
}
