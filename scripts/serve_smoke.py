#!/usr/bin/env python3
"""CI smoke of the lfsc_serve recovery contract (DESIGN.md §14).

Three phases, all against the real binary:

1. Reference: stream a deterministic task trace (fixed-seed RNG) through
   an uninterrupted service and record its final stats line.
2. Crash: stream the same trace into a second service writing periodic
   checkpoint generations, SIGKILL it mid-run (no drain, no flush),
   restart with --resume-latest, ask the recovered service which slot it
   is at, and re-stream the remainder of the trace from there.
3. Drain: start a timer-ticked service, SIGTERM it, and require exit 0
   within a bounded deadline plus a final checkpoint generation on disk.

The recovered run's stats must match the reference byte-for-byte on
every state-backed field. Process-local counters (ticks,
deadline_misses, protocol_errors, checkpoints) reset with the process
by design and are excluded.

Usage: serve_smoke.py --serve-bin build/tools/lfsc_serve
"""
import argparse
import glob
import os
import random
import signal
import subprocess
import sys
import tempfile
import time

STATE_BACKED = [
    "slots", "reward", "qos_violation", "resource_violation",
    "offered", "admitted", "shed", "backlog", "rung",
    "escalations", "recoveries", "audit_checks", "audit_violations",
]

SERVE_FLAGS = ["--scns", "6", "--capacity", "5", "--alpha", "3",
               "--beta", "7", "--telemetry-interval", "1"]


def task_lines(slot, count, scns=6):
    """Deterministic per-slot task lines: same slot -> same bytes."""
    rng = random.Random(1000 + slot)

    def r(lo, hi):
        return repr(lo + (hi - lo) * rng.random())

    lines = []
    for i in range(count):
        m0 = rng.randrange(scns)
        m1 = (m0 + 1 + rng.randrange(scns - 1)) % scns
        res = ("cpu", "gpu", "cpugpu")[i % 3]
        cov = (f"{m0}:{r(0, 1)}:{r(0, 1)}:{r(1, 2)},"
               f"{m1}:{r(0, 1)}:{r(0, 1)}:{r(1, 2)}")
        lines.append(f"task {i} {r(5, 15)} {r(1, 3)} {res} {cov}")
    return lines


class Serve:
    def __init__(self, bin_path, extra):
        self.proc = subprocess.Popen(
            [bin_path] + SERVE_FLAGS + extra,
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, bufsize=1)

    def request(self, line):
        self.proc.stdin.write(line + "\n")
        self.proc.stdin.flush()
        response = self.proc.stdout.readline().rstrip("\n")
        if not response:
            raise RuntimeError(f"no response to {line!r} (service died?)")
        return response

    def expect_ok(self, line):
        response = self.request(line)
        if not response.startswith("ok"):
            raise RuntimeError(f"{line!r} -> {response!r}")
        return response


def drive(serve, lo, hi, tasks):
    for t in range(lo, hi + 1):
        for line in task_lines(t, tasks):
            serve.expect_ok(line)
        tick = serve.expect_ok("tick")
        assert tick.startswith(f"ok slot={t} "), f"slot drift: {tick}"


def parse_stats(line):
    return dict(tok.split("=", 1) for tok in line.split() if "=" in tok)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve-bin", required=True)
    ap.add_argument("--slots", type=int, default=40)
    ap.add_argument("--crash-after", type=int, default=20)
    ap.add_argument("--tasks", type=int, default=8)
    args = ap.parse_args()

    # --- Phase 1: the uninterrupted reference ------------------------
    ref = Serve(args.serve_bin, [])
    drive(ref, 1, args.slots, args.tasks)
    want = parse_stats(ref.expect_ok("stats"))
    ref.expect_ok("shutdown")
    assert ref.proc.wait(timeout=30) == 0, "reference run failed to exit 0"
    print(f"reference: slots={want['slots']} reward={want['reward']}")

    with tempfile.TemporaryDirectory(prefix="lfsc_serve_smoke_") as tmp:
        prefix = os.path.join(tmp, "ckpt")

        # --- Phase 2: SIGKILL mid-run, then supervised recovery ------
        victim = Serve(args.serve_bin,
                       ["--checkpoint", prefix, "--checkpoint-every", "5"])
        drive(victim, 1, args.crash_after, args.tasks)
        # In-flight traffic past the last checkpoint that the kill wipes.
        for line in task_lines(args.crash_after + 1, args.tasks):
            victim.expect_ok(line)
        victim.proc.kill()  # SIGKILL: no drain, no final checkpoint
        victim.proc.wait(timeout=30)
        generations = sorted(glob.glob(prefix + ".g*"))
        assert generations, "no checkpoint generations before the kill"
        print(f"killed -9 after slot {args.crash_after}; "
              f"generations on disk: {[os.path.basename(g) for g in generations]}")

        resumed = Serve(args.serve_bin,
                        ["--checkpoint", prefix, "--resume-latest"])
        at = int(parse_stats(resumed.expect_ok("stats"))["slots"])
        assert 0 < at <= args.crash_after, f"recovered to implausible slot {at}"
        print(f"resumed at slot {at}; re-streaming {at + 1}..{args.slots}")
        drive(resumed, at + 1, args.slots, args.tasks)
        got = parse_stats(resumed.expect_ok("stats"))
        resumed.expect_ok("shutdown")
        assert resumed.proc.wait(timeout=30) == 0

        bad = [f"  {k}: got {got[k]!r}, want {want[k]!r}"
               for k in STATE_BACKED if got[k] != want[k]]
        if bad:
            print("FAIL: recovered run diverged from the reference on "
                  "state-backed fields:", file=sys.stderr)
            print("\n".join(bad), file=sys.stderr)
            return 1
        print(f"recovery: {len(STATE_BACKED)} state-backed fields "
              "byte-identical to the uninterrupted run")

        # --- Phase 3: SIGTERM drain within a bounded deadline --------
        drain_prefix = os.path.join(tmp, "drain")
        timed = Serve(args.serve_bin,
                      ["--checkpoint", drain_prefix, "--tick-ms", "10"])
        time.sleep(0.5)  # let the timer tick a few slots
        timed.proc.send_signal(signal.SIGTERM)
        try:
            rc = timed.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            timed.proc.kill()
            print("FAIL: SIGTERM drain exceeded the 10 s deadline",
                  file=sys.stderr)
            return 1
        if rc != 0:
            print(f"FAIL: drain exited {rc}, want 0", file=sys.stderr)
            return 1
        if not glob.glob(drain_prefix + ".g*"):
            print("FAIL: drain wrote no final checkpoint generation",
                  file=sys.stderr)
            return 1
        print("drain: SIGTERM -> exit 0 with a final generation")

    print("serve_smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
