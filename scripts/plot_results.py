#!/usr/bin/env python3
"""Plot the CSV series emitted by the bench binaries.

Usage:
    # run the benches first (they write CSVs to the working directory)
    ./build/bench/fig2a_cumulative_reward
    ./build/bench/fig3_alpha_sweep
    python3 scripts/plot_results.py            # plots whatever CSVs exist
    python3 scripts/plot_results.py --dir out  # read CSVs from ./out

Produces one PNG next to each recognized CSV:
    fig2a.csv -> fig2a.png   cumulative compound reward vs t
    fig2b.csv -> fig2b.png   per-slot compound reward (smoothed)
    fig2c.csv / fig2d.csv    cumulative violations of (1c)/(1d)
    fig2e.csv -> fig2e.png   performance ratio vs t
    fig3.csv  -> fig3.png    reward & QoS violation vs alpha (two panels)
    fig4.csv  -> fig4.png    reward & violations per environment (bars)
    ablation.csv             LFSC variant bars
    replication.csv          mean ± CI bars

Requires matplotlib (and nothing else). Missing files are skipped.
"""

import argparse
import csv
import os
import sys

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("plot_results.py needs matplotlib: pip install matplotlib")

POLICY_STYLE = {
    "Oracle": {"color": "#222222", "linestyle": "--"},
    "LFSC": {"color": "#d62728", "linewidth": 2.0},
    "vUCB": {"color": "#1f77b4"},
    "FML": {"color": "#2ca02c"},
    "Random": {"color": "#9467bd"},
    "LinUCB": {"color": "#8c564b"},
    "Thompson": {"color": "#e377c2"},
}


def read_csv(path):
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows:
        raise ValueError(f"{path}: empty")
    header, data = rows[0], rows[1:]
    return header, data


def floats(rows, col):
    return [float(r[col]) for r in rows]


def save(fig, path):
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    plt.close(fig)
    print(f"wrote {path}")


def plot_series(path, title, ylabel, smooth_window=0):
    header, rows = read_csv(path)
    t = floats(rows, 0)
    fig, ax = plt.subplots(figsize=(7, 4.2))
    for col, name in enumerate(header[1:], start=1):
        ys = floats(rows, col)
        if smooth_window > 1:
            acc, out = 0.0, []
            queue = []
            for y in ys:
                queue.append(y)
                acc += y
                if len(queue) > smooth_window:
                    acc -= queue.pop(0)
                out.append(acc / len(queue))
            ys = out
        ax.plot(t, ys, label=name, **POLICY_STYLE.get(name, {}))
    ax.set_xlabel("time slot t")
    ax.set_ylabel(ylabel)
    ax.set_title(title)
    ax.legend(fontsize=8)
    ax.grid(alpha=0.3)
    save(fig, os.path.splitext(path)[0] + ".png")


def plot_fig3(path):
    header, rows = read_csv(path)
    alphas = floats(rows, 0)
    policies = [h[: -len("_reward")] for h in header if h.endswith("_reward")]
    fig, (left, right) = plt.subplots(1, 2, figsize=(10, 4.2))
    for k, name in enumerate(policies):
        style = POLICY_STYLE.get(name, {})
        left.plot(alphas, floats(rows, 1 + k), marker="o", label=name, **style)
        right.plot(alphas, floats(rows, 1 + len(policies) + k), marker="o",
                   label=name, **style)
    left.set_xlabel("alpha")
    left.set_ylabel("total compound reward")
    left.set_title("Fig 3 (left): reward vs alpha")
    right.set_xlabel("alpha")
    right.set_ylabel("total QoS violation (1c)")
    right.set_title("Fig 3 (right): violation vs alpha")
    for ax in (left, right):
        ax.grid(alpha=0.3)
        ax.legend(fontsize=8)
    save(fig, os.path.splitext(path)[0] + ".png")


def plot_fig4(path):
    header, rows = read_csv(path)
    envs = [r[0] for r in rows]
    policies = [h[: -len("_reward")] for h in header if h.endswith("_reward")]
    base = 4  # environment, lo, hi, blockage
    fig, (top, bottom) = plt.subplots(2, 1, figsize=(9, 7))
    width = 0.8 / len(policies)
    xs = range(len(envs))
    for k, name in enumerate(policies):
        style = POLICY_STYLE.get(name, {})
        offs = [x + (k - len(policies) / 2) * width for x in xs]
        top.bar(offs, floats(rows, base + k), width=width, label=name,
                color=style.get("color"))
        bottom.bar(offs, floats(rows, base + len(policies) + k), width=width,
                   label=name, color=style.get("color"))
    for ax, label in ((top, "total reward"), (bottom, "total violations")):
        ax.set_xticks(list(xs))
        ax.set_xticklabels(envs, fontsize=7)
        ax.set_ylabel(label)
        ax.grid(alpha=0.3, axis="y")
        ax.legend(fontsize=8)
    top.set_title("Fig 4: channel environments")
    save(fig, os.path.splitext(path)[0] + ".png")


def plot_ablation(path):
    header, rows = read_csv(path)
    labels = [r[0] for r in rows]
    fig, ax = plt.subplots(figsize=(9, 4.8))
    xs = range(len(labels))
    ax.bar(xs, [float(r[3]) for r in rows], color="#d62728")
    ax.set_xticks(list(xs))
    ax.set_xticklabels(labels, rotation=30, ha="right", fontsize=7)
    ax.set_ylabel("performance ratio")
    ax.set_title("LFSC design ablations")
    ax.grid(alpha=0.3, axis="y")
    save(fig, os.path.splitext(path)[0] + ".png")


def plot_replication(path):
    header, rows = read_csv(path)
    labels = [r[0] for r in rows]
    fig, ax = plt.subplots(figsize=(7, 4.2))
    xs = range(len(labels))
    means = [float(r[7]) for r in rows]  # ratio_mean
    cis = [float(r[8]) for r in rows]
    colors = [POLICY_STYLE.get(name, {}).get("color") for name in labels]
    ax.bar(xs, means, yerr=cis, capsize=4, color=colors)
    ax.set_xticks(list(xs))
    ax.set_xticklabels(labels)
    ax.set_ylabel("performance ratio (mean ± 95% CI)")
    ax.set_title("Replicated summary across seeds")
    ax.grid(alpha=0.3, axis="y")
    save(fig, os.path.splitext(path)[0] + ".png")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", help="directory holding the CSVs")
    args = parser.parse_args()
    os.chdir(args.dir)

    plotted = 0
    handlers = [
        ("fig2a.csv", lambda p: plot_series(
            p, "Fig 2(a): cumulative compound reward", "cumulative reward")),
        ("fig2b.csv", lambda p: plot_series(
            p, "Fig 2(b): per-slot compound reward (smoothed w=50)",
            "reward per slot", smooth_window=50)),
        ("fig2c.csv", lambda p: plot_series(
            p, "Fig 2(c): cumulative QoS violation (1c)",
            "cumulative violation")),
        ("fig2d.csv", lambda p: plot_series(
            p, "Fig 2(d): cumulative resource violation (1d)",
            "cumulative violation")),
        ("fig2e.csv", lambda p: plot_series(
            p, "Performance ratio", "reward / (reward + violations)")),
        ("fig3.csv", plot_fig3),
        ("fig4.csv", plot_fig4),
        ("ablation.csv", plot_ablation),
        ("replication.csv", plot_replication),
    ]
    for filename, handler in handlers:
        if os.path.exists(filename):
            try:
                handler(filename)
                plotted += 1
            except Exception as error:  # keep going on malformed files
                print(f"skipping {filename}: {error}", file=sys.stderr)
    if plotted == 0:
        print("no recognized CSVs found — run the bench binaries first",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
