#!/usr/bin/env python3
"""Run every checked-in scenario family and collect its CSV series.

Usage:
    python3 scripts/sweep.py                           # all families, T from spec
    python3 scripts/sweep.py --horizon 2000            # shorter horizon
    python3 scripts/sweep.py --families diurnal,drift_walk
    python3 scripts/sweep.py --policies Oracle,LFSC,vUCB,FML,Random

For each scenarios/<family>.scn this drives

    build/tools/lfsc_run --scenario scenarios/<family>.scn \
        --policies <roster> --csv <out-dir>/<family> [--horizon T]

producing <out-dir>/<family>_reward.csv (cumulative compound reward per
slot, one column per policy) and <out-dir>/<family>_violations.csv
(cumulative QoS (1c) + resource (1d) violations, same shape), plus a
summary table <out-dir>/summary.csv with the final-slot numbers —
the table EXPERIMENTS.md's non-stationary section is built from.

Pure standard library; exits non-zero on the first failing run.
"""

import argparse
import csv
import os
import subprocess
import sys


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def find_families(scn_dir: str, wanted: "list[str] | None") -> "list[str]":
    families = sorted(
        f[: -len(".scn")] for f in os.listdir(scn_dir) if f.endswith(".scn")
    )
    if not families:
        sys.exit(f"sweep.py: no *.scn files in {scn_dir}")
    if wanted is None:
        return families
    missing = sorted(set(wanted) - set(families))
    if missing:
        sys.exit(
            f"sweep.py: unknown families {', '.join(missing)} "
            f"(have: {', '.join(families)})"
        )
    return [f for f in families if f in set(wanted)]


def final_row(path: str) -> "dict[str, float]":
    """Last row of a series CSV as {policy: value}."""
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        last = None
        for last in reader:
            pass
    if last is None:
        sys.exit(f"sweep.py: {path} has no data rows")
    return dict(zip(header[1:], (float(x) for x in last[1:])))


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build", help="CMake build directory")
    ap.add_argument("--scenarios", default="scenarios", help="directory of *.scn files")
    ap.add_argument("--out-dir", default="out/sweep", help="CSV output directory")
    ap.add_argument(
        "--families",
        default=None,
        help="comma-separated subset (default: every *.scn)",
    )
    ap.add_argument(
        "--policies",
        default="Oracle,LFSC,vUCB,FML,Random",
        help="roster passed to lfsc_run --policies",
    )
    ap.add_argument(
        "--horizon",
        type=int,
        default=0,
        help="override the spec horizon (0 = use each spec's own T)",
    )
    ap.add_argument(
        "--extra",
        default="",
        help="extra lfsc_run flags, e.g. '--admission-queue 2400'",
    )
    args = ap.parse_args()

    root = repo_root()
    run = os.path.join(root, args.build_dir, "tools", "lfsc_run")
    if not os.path.exists(run):
        sys.exit(f"sweep.py: {run} not built (cmake --build {args.build_dir})")
    scn_dir = os.path.join(root, args.scenarios)
    wanted = args.families.split(",") if args.families else None
    families = find_families(scn_dir, wanted)
    os.makedirs(args.out_dir, exist_ok=True)

    summary_rows = []
    for family in families:
        prefix = os.path.join(args.out_dir, family)
        cmd = [
            run,
            "--scenario", os.path.join(scn_dir, family + ".scn"),
            "--policies", args.policies,
            "--csv", prefix,
        ]
        if args.horizon > 0:
            cmd += ["--horizon", str(args.horizon)]
        cmd += args.extra.split()
        print(f"sweep: {family} ...", flush=True)
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            sys.exit(f"sweep.py: {family} failed (exit {proc.returncode})")

        reward = final_row(prefix + "_reward.csv")
        violations = final_row(prefix + "_violations.csv")
        for policy in reward:
            summary_rows.append(
                {
                    "family": family,
                    "policy": policy,
                    "reward": reward[policy],
                    "violations": violations[policy],
                    "ratio": (
                        reward[policy] / reward["Oracle"]
                        if reward.get("Oracle")
                        else float("nan")
                    ),
                }
            )

    summary = os.path.join(args.out_dir, "summary.csv")
    with open(summary, "w", newline="") as f:
        writer = csv.DictWriter(
            f, fieldnames=["family", "policy", "reward", "violations", "ratio"]
        )
        writer.writeheader()
        writer.writerows(summary_rows)
    print(f"sweep: {len(families)} families -> {summary}")


if __name__ == "__main__":
    main()
