#!/usr/bin/env python3
"""CI smoke of the lfsc_serve zero-downtime handoff (DESIGN.md §16).

Three phases, all against the real binary over a real Unix socket:

1. Reference: stream a deterministic task trace — salted with garbage
   lines and reconfig churn — through one uninterrupted process,
   issuing `checkpoint` exactly where phase 2 will hand off, and record
   every task/tick/garbage response plus the final stats line.
2. Handoff: stream the identical trace into process A until mid-stream
   (with the next slot's tasks already queued), send `handoff`, start
   process B with --takeover, require A to exit 0, reconnect to the
   same socket path, and re-stream the remainder. Zero tasks may be
   dropped or duplicated (the per-tick `ok slot=<t> tasks=<n>`
   transcript must equal the reference's), and the final stats line
   must match the reference byte-for-byte — every field, including the
   service counters that ride the checkpoint's serve blob.
3. Continuation: resume a fresh process from each run's final
   checkpoint generation, drive five more identical slots, and require
   byte-identical stats again — the handed-off generation must be as
   good as the uninterrupted one for every future restart.

Usage: handoff_smoke.py --serve-bin build/tools/lfsc_serve
"""
import argparse
import glob
import os
import random
import socket
import subprocess
import sys
import tempfile
import time

SERVE_FLAGS = ["--scns", "6", "--capacity", "5", "--alpha", "3",
               "--beta", "7", "--telemetry-interval", "1"]

# Live reconfiguration is operator configuration, not checkpointed
# state: every (re)started process gets it re-issued before traffic.
RECONFIG = "reconfig admission_max_queue=30 qos_alpha=2.5"


def task_lines(slot, count, scns=6):
    """Deterministic per-slot task lines: same slot -> same bytes."""
    rng = random.Random(1000 + slot)

    def r(lo, hi):
        return repr(lo + (hi - lo) * rng.random())

    lines = []
    for i in range(count):
        m0 = rng.randrange(scns)
        m1 = (m0 + 1 + rng.randrange(scns - 1)) % scns
        res = ("cpu", "gpu", "cpugpu")[i % 3]
        cov = (f"{m0}:{r(0, 1)}:{r(0, 1)}:{r(1, 2)},"
               f"{m1}:{r(0, 1)}:{r(0, 1)}:{r(1, 2)}")
        lines.append(f"task {i} {r(5, 15)} {r(1, 3)} {res} {cov}")
    return lines


class SockServe:
    """One lfsc_serve process on a Unix socket plus one protocol client."""

    def __init__(self, bin_path, sock_path, extra):
        self.sock_path = sock_path
        self.proc = subprocess.Popen(
            [bin_path] + SERVE_FLAGS + ["--socket", sock_path] + extra,
            stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL)
        self.sock = None
        self.buf = b""

    def connect(self, timeout=15.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                s.connect(self.sock_path)
                s.settimeout(15.0)
                self.sock = s
                self.buf = b""
                return
            except OSError:
                time.sleep(0.02)
        raise RuntimeError(f"cannot connect to {self.sock_path}")

    def read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise RuntimeError("service closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def request(self, line):
        self.sock.sendall((line + "\n").encode())
        while True:
            response = self.read_line()
            if not response.startswith("push "):  # async telemetry push
                return response

    def expect_ok(self, line):
        response = self.request(line)
        if not response.startswith("ok"):
            raise RuntimeError(f"{line!r} -> {response!r}")
        return response

    def close(self):
        if self.sock is not None:
            self.sock.close()
            self.sock = None


def drive(serve, lo, hi, tasks, transcript):
    """Slots lo..hi with per-slot churn: garbage lines (exactly one err
    each), telemetry-push reconfig flips, and the task trace. Every
    task/tick/garbage response lands in `transcript` so the reference
    and the handed-off run can be diffed line by line."""
    for t in range(lo, hi + 1):
        if t % 4 == 2:
            response = serve.request(f"garbage {t}")
            assert response.startswith("err "), response
            transcript.append(response)
        if t % 6 == 3:
            serve.expect_ok(f"reconfig telemetry_push={t % 12}")
        for line in task_lines(t, tasks):
            transcript.append(serve.expect_ok(line))
        tick = serve.expect_ok("tick")
        assert tick.startswith(f"ok slot={t} "), f"slot drift: {tick}"
        transcript.append(tick)


def queue_next_slot(serve, slot, tasks, transcript):
    for line in task_lines(slot, tasks):
        transcript.append(serve.expect_ok(line))


def tick_prequeued_slot(serve, t, tasks, transcript):
    """Complete slot t whose tasks were queued before the checkpoint/
    handoff — the tick must report exactly that many: none dropped on
    the floor, none replayed twice. Churn matches drive()'s schedule so
    the reference and handoff transcripts stay comparable."""
    if t % 4 == 2:
        response = serve.request(f"garbage {t}")
        assert response.startswith("err "), response
        transcript.append(response)
    if t % 6 == 3:
        serve.expect_ok(f"reconfig telemetry_push={t % 12}")
    tick = serve.expect_ok("tick")
    assert tick == f"ok slot={t} tasks={tasks}", \
        f"queued tasks dropped or duplicated across the boundary: {tick}"
    transcript.append(tick)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve-bin", required=True)
    ap.add_argument("--slots", type=int, default=30)
    ap.add_argument("--handoff-after", type=int, default=15)
    ap.add_argument("--tasks", type=int, default=8)
    args = ap.parse_args()
    h = args.handoff_after

    with tempfile.TemporaryDirectory(prefix="lfsc_handoff_smoke_") as tmp:
        # --- Phase 1: the uninterrupted reference --------------------
        ref_prefix = os.path.join(tmp, "ref")
        ref = SockServe(args.serve_bin, os.path.join(tmp, "ref.sock"),
                        ["--checkpoint", ref_prefix])
        ref.connect()
        ref.expect_ok(RECONFIG)
        want_transcript = []
        drive(ref, 1, h, args.tasks, want_transcript)
        queue_next_slot(ref, h + 1, args.tasks, want_transcript)
        assert ref.expect_ok("checkpoint") == "ok generation=1"
        tick_prequeued_slot(ref, h + 1, args.tasks, want_transcript)
        drive(ref, h + 2, args.slots, args.tasks, want_transcript)
        want_stats = ref.expect_ok("stats")
        assert ref.expect_ok("checkpoint") == "ok generation=2"
        ref.expect_ok("shutdown")
        assert ref.proc.wait(timeout=30) == 0
        print(f"reference: {args.slots} slots, "
              f"{len(want_transcript)} transcript lines")

        # --- Phase 2: handoff mid-stream under churn -----------------
        prefix = os.path.join(tmp, "hand")
        sock_path = os.path.join(tmp, "live.sock")
        old = SockServe(args.serve_bin, sock_path, ["--checkpoint", prefix])
        old.connect()
        old.expect_ok(RECONFIG)
        got_transcript = []
        drive(old, 1, h, args.tasks, got_transcript)
        queue_next_slot(old, h + 1, args.tasks, got_transcript)
        assert old.expect_ok("handoff") == "ok handoff generation=1"

        new = SockServe(args.serve_bin, sock_path,
                        ["--checkpoint", prefix, "--takeover"])
        rc = old.proc.wait(timeout=30)
        assert rc == 0, f"predecessor exited {rc}, want 0"
        old.close()
        print(f"handoff at slot {h}: predecessor exited 0, "
              "successor owns the socket")

        new.connect()  # same path, new process, no rebind window
        new.expect_ok(RECONFIG)  # supervisor re-issues operator config
        tick_prequeued_slot(new, h + 1, args.tasks, got_transcript)
        drive(new, h + 2, args.slots, args.tasks, got_transcript)
        got_stats = new.expect_ok("stats")
        assert new.expect_ok("checkpoint") == "ok generation=2"
        new.expect_ok("shutdown")
        assert new.proc.wait(timeout=30) == 0

        if got_transcript != want_transcript:
            diffs = [f"  line {i}: got {g!r}, want {w!r}"
                     for i, (g, w) in
                     enumerate(zip(got_transcript, want_transcript))
                     if g != w][:10]
            print("FAIL: handoff transcript diverged "
                  f"({len(got_transcript)} vs {len(want_transcript)} lines):",
                  file=sys.stderr)
            print("\n".join(diffs), file=sys.stderr)
            return 1
        print(f"transcript: {len(got_transcript)} task/tick/garbage "
              "responses identical — zero tasks dropped or duplicated")

        if got_stats != want_stats:
            print("FAIL: stats diverged after handoff:\n"
                  f"  got  {got_stats}\n  want {want_stats}",
                  file=sys.stderr)
            return 1
        print("stats: byte-identical to the uninterrupted run, "
              "every field")

        # --- Phase 3: the handed-off generation restarts as well -----
        finals = {}
        for name, pfx in (("ref", ref_prefix), ("hand", prefix)):
            assert glob.glob(pfx + ".g2"), f"{name}: generation 2 missing"
            resumed = SockServe(args.serve_bin,
                                os.path.join(tmp, f"resume_{name}.sock"),
                                ["--checkpoint", pfx, "--resume-latest"])
            resumed.connect()
            resumed.expect_ok(RECONFIG)
            transcript = []
            drive(resumed, args.slots + 1, args.slots + 5, args.tasks,
                  transcript)
            finals[name] = resumed.expect_ok("stats")
            resumed.expect_ok("shutdown")
            assert resumed.proc.wait(timeout=30) == 0
        if finals["ref"] != finals["hand"]:
            print("FAIL: continuation from the handed-off checkpoint "
                  "diverged:\n"
                  f"  hand {finals['hand']}\n  ref  {finals['ref']}",
                  file=sys.stderr)
            return 1
        print("continuation: resuming either run's final generation "
              "lands on byte-identical stats")

    print("handoff_smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
